// wfslint fixture — D8-hot-path-alloc must stay silent on the idioms the
// arena/SoA engine core actually uses inside its settle and ready-scan
// regions: reused member vectors (cleared, not reconstructed), epoch marks,
// slab indices, and plain arithmetic. Buffers are built outside the region.
#include <cstdint>
#include <vector>

namespace fixture {

struct Slab {
  std::vector<double> remaining;
  std::vector<double> rate;
  std::vector<std::uint32_t> mark;
  std::vector<std::uint32_t> worklist;  // reused across batches; clear() keeps capacity
};

inline Slab makeSlab(std::size_t n) {
  Slab s;
  s.remaining.resize(n);
  s.rate.resize(n);
  s.mark.resize(n);
  s.worklist.reserve(n);
  return s;
}

// wfslint: hot-begin(fixture-flow-settle) runs once per same-timestamp batch
inline double settleBatch(Slab& s, std::uint32_t epoch) {
  s.worklist.clear();
  double total = 0;
  for (std::size_t i = 0; i < s.remaining.size(); ++i) {
    if (s.mark[i] != epoch) continue;
    s.worklist.push_back(static_cast<std::uint32_t>(i));
    total += s.rate[i];
  }
  for (const std::uint32_t slot : s.worklist) s.remaining[slot] -= s.rate[slot];
  return total;
}
// wfslint: hot-end

// wfslint: hot-begin(fixture-ready-scan) runs after every job completion
inline int readyScan(std::vector<int>& indegree, std::vector<std::uint32_t>& readyOut) {
  readyOut.clear();
  int ready = 0;
  for (std::size_t i = 0; i < indegree.size(); ++i) {
    if (indegree[i] == 0) {
      readyOut.push_back(static_cast<std::uint32_t>(i));
      ++ready;
    }
  }
  return ready;
}
// wfslint: hot-end

}  // namespace fixture
