// wfslint fixture — D8-hot-path-alloc must stay silent: allocation outside
// the region is free, std::string_view is not std::string, and a reasoned
// allow() covers a deliberate in-region exception.
#include <string>
#include <string_view>

namespace fixture {

inline std::string coldSetup() { return "built once, outside the region"; }

// wfslint: hot-begin(fixture-hot-loop)
inline int hotLoop(std::string_view label, int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += static_cast<int>(label.size());
  // wfslint: allow(D8-hot-path-alloc) one-time lazy init, amortized across the run
  static const std::string cached = coldSetup();
  return acc + static_cast<int>(cached.size());
}
// wfslint: hot-end

inline std::string coldTeardown() { return coldSetup() + " and torn down after"; }

}  // namespace fixture
