// wfslint fixture — D5-layering MUST fire: a resurrected Trace::instance()
// global and a write-once catalog mutated outside src/storage.
#include <string>

namespace wfs::sim {
class Trace {
 public:
  static Trace* instance();  // the global this repo deleted in PR 1
  void log(const std::string& line);
};
}  // namespace wfs::sim

namespace wfs {

struct Meta {
  bool lost = false;
};

class FileCatalog {
 public:
  void markLost(const std::string& path);
};

class Rogue {
 public:
  void scribble(const std::string& path) {
    sim::Trace::instance()->log(path);  // fires: Trace::instance()
    catalog_.markLost(path);            // fires: catalog mutation outside src/storage
  }

 private:
  FileCatalog catalog_;
};

}  // namespace wfs
