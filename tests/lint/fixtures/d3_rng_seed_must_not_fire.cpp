// wfslint fixture — D3-rng-seed must stay silent: streams seeded from
// config and forked per concern are exactly the sanctioned pattern.
namespace sim {
class Rng {
 public:
  explicit Rng(unsigned long long seed) : s_{seed} {}
  Rng fork() { return Rng{next()}; }
  unsigned long long next() { return ++s_; }
  unsigned long long s_;
};
}  // namespace sim

struct Config {
  unsigned long long seed = 0;
};

double drive(const Config& cfg) {
  sim::Rng root{cfg.seed};        // seeded from config: fine
  sim::Rng crashStream = root.fork();   // forked per concern: fine
  sim::Rng outageStream = root.fork();  // forked per concern: fine
  return static_cast<double>(crashStream.next() + outageStream.next());
}
