// wfslint fixture — L-layering must stay silent when this file is classified
// as living in src/wf (the ctest case passes --treat-as src/wf/x.cpp):
// downward and same-layer edges are the DAG working as intended.
#include "simcore/simulator.hpp"            // rank 0 < wf: fine
#include "net/flow_network.hpp"             // rank 1 < wf: fine
#include "storage/base/storage_system.hpp"  // rank 2 < wf: fine
#include "fault/plan.hpp"                   // rank 3 < wf: fine
#include "wf/dag.hpp"                       // same layer: fine
#include <string>                           // system header: no layer

int middleLayer() { return 0; }
