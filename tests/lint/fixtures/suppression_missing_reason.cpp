// wfslint fixture — WFS-bad-suppression MUST fire twice: an allow() with no
// justification, and an allow() naming a rule that does not exist. The
// well-formed suppression at the bottom must NOT leave a finding.
#include <string>
#include <unordered_set>

struct Sweeper {
  std::unordered_set<std::string> paths;

  int reasonless() {
    int n = 0;
    // wfslint: allow(unordered-iter)
    for (const auto& p : paths) n += static_cast<int>(p.size());  // stays flagged
    return n;
  }

  int unknownRule() {
    int n = 0;
    // wfslint: allow(made-up-rule) this rule id does not exist
    for (const auto& p : paths) n += static_cast<int>(p.size());  // stays flagged
    return n;
  }

  int justified() {
    int n = 0;
    // wfslint: allow(unordered-iter) order-free count; nothing escapes but the sum
    for (const auto& p : paths) n += static_cast<int>(p.size());
    return n;
  }
};
