// wfslint fixture — D5-layering must stay silent: tracing through the
// owning simulator and mutating files through the StorageSystem surface.
#include <string>

namespace wfs {

class Simulator {
 public:
  void trace(const std::string& line);
};

class StorageSystem {
 public:
  void retractFile(const std::string& path);
  void preload(const std::string& path, unsigned long long size);
};

class WellBehaved {
 public:
  WellBehaved(Simulator& sim, StorageSystem& storage) : sim_{&sim}, storage_{&storage} {}

  void recover(const std::string& path) {
    sim_->trace("retracting " + path);  // per-simulator trace: fine
    storage_->retractFile(path);        // catalog mutated via the API: fine
    storage_->preload(path, 1024);
  }

 private:
  Simulator* sim_;
  StorageSystem* storage_;
};

}  // namespace wfs
