// wfslint fixture — D4-float-eq must stay silent: integer compares,
// epsilon compares, and accumulation over ordered ranges are all fine.
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

bool emptyLedger(std::uint64_t ops) {
  return ops == 0;  // integer compare: fine
}

bool closeEnough(double a, double b) {
  return std::abs(a - b) < 1e-9;  // epsilon compare: fine
}

double total(const std::vector<double>& samples) {
  return std::accumulate(samples.begin(), samples.end(), 0.0);  // ordered: fine
}

double assignNotCompare() {
  double x = 0.0;  // assignment, not comparison: fine
  return x <= 0.5 ? 0.25 : x;  // relational, not equality: fine
}
