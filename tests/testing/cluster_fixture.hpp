#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blk/raid0.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "simcore/simulator.hpp"
#include "storage/base/storage_system.hpp"

namespace wfs::testing {

/// Minimal virtual cluster for storage-layer tests: N hosts, each with a
/// gigabit NIC and a 4-disk RAID-0 array, pre-initialized by default so
/// bandwidth math in expectations is simple (the first-write penalty has
/// its own dedicated tests).
struct ClusterOptions {
  int nodes = 2;
  Bytes memory = 7_GB;
  Rate nicRate = MBps(100);
  bool initializeDisks = true;
  bool zeroDiskOverheads = false;  // no seek / per-op latency
};

struct MiniCluster {
  explicit MiniCluster(const ClusterOptions& opt = ClusterOptions{}) {
    blk::Raid0::Config rc;
    if (opt.zeroDiskOverheads) {
      rc.member.perOpLatency = sim::Duration::zero();
      rc.member.seekTime = sim::Duration::zero();
    }
    for (int i = 0; i < opt.nodes; ++i) {
      const std::string host = "node" + std::to_string(i);
      nics.push_back(std::make_unique<net::Nic>(net, opt.nicRate, opt.nicRate,
                                                sim::Duration::micros(50), host));
      disks.push_back(std::make_unique<blk::Raid0>(net, rc, host + ".md0"));
      if (opt.initializeDisks) disks.back()->initializeAll();
      nodes.push_back(storage::StorageNode{host, nics.back().get(), disks.back().get(),
                                           opt.memory});
    }
  }

  /// Makes an extra host (e.g. a dedicated NFS server) outside `nodes`.
  storage::StorageNode makeHost(const std::string& host, Bytes memory, Rate nicRate,
                                bool initialize = true) {
    nics.push_back(
        std::make_unique<net::Nic>(net, nicRate, nicRate, sim::Duration::micros(50), host));
    blk::Raid0::Config rc;
    disks.push_back(std::make_unique<blk::Raid0>(net, rc, host + ".md0"));
    if (initialize) disks.back()->initializeAll();
    return storage::StorageNode{host, nics.back().get(), disks.back().get(), memory};
  }

  double run(sim::Task<void> t) {
    double finish = -1;
    sim.spawn([](sim::Simulator& s, sim::Task<void> inner, double& out) -> sim::Task<void> {
      co_await std::move(inner);
      out = s.now().asSeconds();
    }(sim, std::move(t), finish));
    sim.run();
    return finish;
  }

  sim::Simulator sim;
  net::FlowNetwork net{sim};
  net::Fabric fabric{net, net::Fabric::Config{}};
  std::vector<std::unique_ptr<net::Nic>> nics;
  std::vector<std::unique_ptr<blk::Raid0>> disks;
  std::vector<storage::StorageNode> nodes;
};

}  // namespace wfs::testing
