#include <gtest/gtest.h>

#include "simcore/file_id.hpp"
#include "storage/base/lru_cache.hpp"
#include "storage/base/path.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/stack/layer_stack.hpp"
#include "storage/stack/node_stack.hpp"
#include "storage/stack/write_behind_layer.hpp"
#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

// ---------------- path utils ----------------

TEST(PathUtils, HashIsStableAndSpreads) {
  EXPECT_EQ(pathHash("a/b/c"), pathHash("a/b/c"));
  EXPECT_NE(pathHash("a/b/c"), pathHash("a/b/d"));
  // Rough spread check over 4 buckets.
  int buckets[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    buckets[pathHash("file_" + std::to_string(i) + ".dat") % 4]++;
  }
  for (int b : buckets) {
    EXPECT_GT(b, 800);
    EXPECT_LT(b, 1200);
  }
}

TEST(PathUtils, BaseAndDirName) {
  EXPECT_EQ(baseName("a/b/c.fits"), "c.fits");
  EXPECT_EQ(baseName("plain.txt"), "plain.txt");
  EXPECT_EQ(dirName("a/b/c.fits"), "a/b");
  EXPECT_EQ(dirName("plain.txt"), "");
  EXPECT_EQ(joinPath("a/b", "c"), "a/b/c");
  EXPECT_EQ(joinPath("a/b/", "c"), "a/b/c");
  EXPECT_EQ(joinPath("", "c"), "c");
}

// ---------------- LRU cache ----------------

/// Shorthand for a dense FileId in cache unit tests.
sim::FileId fid(std::uint32_t v) { return sim::FileId{v}; }

TEST(LruCache, BasicPutTouch) {
  LruCache c{100};
  c.put(fid(0), 40);
  c.put(fid(1), 40);
  EXPECT_TRUE(c.touch(fid(0)));
  EXPECT_FALSE(c.touch(fid(99)));
  EXPECT_FALSE(c.touch(sim::FileId{}));  // invalid id is never resident
  EXPECT_EQ(c.used(), 80);
  EXPECT_EQ(c.entryCount(), 2u);
}

TEST(LruCache, EvictsLeastRecent) {
  LruCache c{100};
  c.put(fid(0), 40);
  c.put(fid(1), 40);
  c.touch(fid(0));    // 1 is now LRU
  c.put(fid(2), 40);  // must evict 1
  EXPECT_TRUE(c.contains(fid(0)));
  EXPECT_FALSE(c.contains(fid(1)));
  EXPECT_TRUE(c.contains(fid(2)));
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(LruCache, OversizedObjectNotCached) {
  LruCache c{100};
  c.put(fid(0), 200);
  EXPECT_FALSE(c.contains(fid(0)));
  EXPECT_EQ(c.used(), 0);
}

TEST(LruCache, ReputUpdatesSize) {
  LruCache c{100};
  c.put(fid(0), 10);
  c.put(fid(0), 60);
  EXPECT_EQ(c.used(), 60);
  EXPECT_EQ(c.entryCount(), 1u);
}

TEST(LruCache, EraseAndClear) {
  LruCache c{100};
  c.put(fid(0), 10);
  c.put(fid(1), 10);
  c.erase(fid(0));
  EXPECT_FALSE(c.contains(fid(0)));
  EXPECT_EQ(c.used(), 10);
  c.clear();
  EXPECT_EQ(c.used(), 0);
  EXPECT_EQ(c.entryCount(), 0u);
}

// ---------------- file catalog ----------------

TEST(FileCatalog, WriteOnceEnforced) {
  sim::FileIdTable files;
  FileCatalog cat;
  cat.bind(files);
  const sim::FileId x = files.intern("x");
  cat.create(x, 100, 0);
  EXPECT_TRUE(cat.exists(x));
  EXPECT_EQ(cat.lookup(x).size, 100);
  EXPECT_THROW(cat.create(x, 100, 1), std::logic_error);
  EXPECT_THROW((void)cat.lookup(files.intern("missing")), std::out_of_range);
}

TEST(FileCatalog, ErrorsNameTheOffendingPath) {
  sim::FileIdTable files;
  FileCatalog cat;
  cat.bind(files);
  const sim::FileId m101 = files.intern("data/m101.fits");
  cat.create(m101, 100, 0);
  try {
    cat.create(m101, 100, 1);
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string{e.what()}.find("data/m101.fits"), std::string::npos) << e.what();
  }
  try {
    (void)cat.lookup(files.intern("missing.dat"));
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string{e.what()}.find("missing.dat"), std::string::npos) << e.what();
  }
}

// ---------------- write-behind layer ----------------

/// A WriteBehindLayer alone in a stack: writes never forward, reads would.
struct WriteBehindRig {
  explicit WriteBehindRig(testing::MiniCluster& w, Bytes dirtyLimit)
      : stack{w.sim, metrics, makeLayers(w, dirtyLimit)},
        wb{static_cast<WriteBehindLayer*>(stack.layer(0))} {}

  static std::vector<std::unique_ptr<IoLayer>> makeLayers(testing::MiniCluster& w,
                                                          Bytes dirtyLimit) {
    WriteBehindLayer::Config cfg;
    cfg.dirtyLimit = dirtyLimit;
    std::vector<std::unique_ptr<IoLayer>> layers;
    layers.push_back(std::make_unique<WriteBehindLayer>(w.sim, *w.nodes[0].disk, cfg));
    return layers;
  }

  StorageMetrics metrics;
  LayerStack stack;
  WriteBehindLayer* wb;
};

TEST(WriteBehindLayer, SmallWriteLandsAtMemorySpeed) {
  testing::MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  WriteBehindRig rig{w, 1_GB};
  // 100 MB at 1 GB/s memRate = 0.1 s; the flush happens in background.
  const double t = w.run(rig.stack.write(0, "f", 100_MB));
  EXPECT_NEAR(t, 0.1, 1e-3);
  EXPECT_EQ(rig.wb->stallCount(), 0u);
}

TEST(WriteBehindLayer, BlocksWhenDirtyLimitReached) {
  testing::MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  WriteBehindRig rig{w, 100_MB};
  // 800 MB >> dirty limit: overall progress is bounded by the disk
  // (initialized RAID-0 at 400 MB/s -> ~2 s), not by memRate (0.8 s).
  const double t = w.run(rig.stack.write(0, "f", 800_MB));
  EXPECT_GT(t, 1.5);
  EXPECT_GT(rig.wb->stallCount(), 0u);
  // Dirty-limit stalls are booked as queue time in the layer ledger.
  const LayerMetrics* lm = rig.metrics.findLayer("performance/write-behind");
  ASSERT_NE(lm, nullptr);
  EXPECT_GT(lm->queueSeconds, 0.0);
}

TEST(WriteBehindLayer, DrainWaitsForAllFlushes) {
  testing::MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  WriteBehindRig rig{w, 1_GB};
  const double t = w.run([](LayerStack& s, WriteBehindLayer& c) -> sim::Task<void> {
    auto wr = s.write(0, "f", 400_MB);
    co_await std::move(wr);
    auto drained = c.drain();
    co_await std::move(drained);
  }(rig.stack, *rig.wb));
  // Write returns at 0.4 s but drain waits for the 400 MB/s flush (~1 s).
  EXPECT_GT(t, 0.99);
  EXPECT_EQ(rig.wb->dirty(), 0);
}

// ---------------- node stack ----------------

TEST(NodeStack, ReadMissHitsDiskThenCaches) {
  testing::MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  auto scratch = makeNodeStack(w.sim, metrics, w.nodes[0], NodeStackConfig{});
  // Miss: 310 MB/s RAID read of 310 MB -> 1 s.
  const double t1 = w.run(scratch->read(0, "f", 310_MB));
  EXPECT_NEAR(t1, 1.0, 1e-3);
  const LayerMetrics* pc = metrics.findLayer("node/page-cache");
  ASSERT_NE(pc, nullptr);
  EXPECT_EQ(pc->cacheMisses, 1u);
  // Hit: memory speed (1 GB/s) -> 0.31 s.
  const double t2 = w.run(scratch->read(0, "f", 310_MB));
  EXPECT_NEAR(t2 - t1, 0.31, 1e-3);
  EXPECT_EQ(pc->cacheHits, 1u);
}

TEST(NodeStack, WriteIsCachedForReadBack) {
  testing::MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  auto scratch = makeNodeStack(w.sim, metrics, w.nodes[0], NodeStackConfig{});
  const double t = w.run([](LayerStack& s) -> sim::Task<void> {
    auto wr = s.write(0, "out", 100_MB);
    co_await std::move(wr);
    auto rd = s.read(0, "out", 100_MB);
    co_await std::move(rd);
  }(*scratch));
  // 0.1 s write admit + 0.1 s cached read; no disk read.
  EXPECT_NEAR(t, 0.2, 1e-2);
  const LayerMetrics* pc = metrics.findLayer("node/page-cache");
  ASSERT_NE(pc, nullptr);
  EXPECT_EQ(pc->cacheMisses, 0u);
}

}  // namespace
}  // namespace wfs::storage
