#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "storage/base/errors.hpp"
#include "storage/local/local_fs.hpp"
#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

using testing::MiniCluster;

FaultArming arming(double prob, std::vector<std::pair<double, double>> outages = {},
                   int maxAttempts = 4, double backoff = 0.5) {
  FaultArming a;
  a.seed = 5;
  a.opFaultProb = prob;
  a.outages = std::move(outages);
  a.maxOpAttempts = maxAttempts;
  a.retryBackoffSeconds = backoff;
  return a;
}

struct Rig {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  LocalFs fs{w.sim, w.nodes};
};

TEST(FaultLayer, InjectedFaultsAreRetriedBelowTheCaller) {
  Rig r;
  r.fs.armFaults(arming(0.2));
  r.w.run([](StorageSystem& f) -> sim::Task<void> {
    for (int i = 0; i < 60; ++i) {
      auto wr = f.write(0, "f" + std::to_string(i), 1_MB);
      co_await std::move(wr);
      auto rd = f.read(0, "f" + std::to_string(i));
      co_await std::move(rd);
    }
  }(r.fs));
  const LayerMetrics* inject = r.fs.metrics().findLayer("fault/inject");
  const LayerMetrics* retry = r.fs.metrics().findLayer("fault/retry");
  ASSERT_NE(inject, nullptr);
  ASSERT_NE(retry, nullptr);
  // At p=0.2 over 120 ops, faults certainly fired, every one was re-driven
  // by the retry layer, and the 4-attempt budget absorbed them all.
  EXPECT_GT(inject->faultsInjected, 0u);
  EXPECT_EQ(retry->faultsRetried, inject->faultsInjected);
  EXPECT_EQ(retry->faultsExhausted, 0u);
}

TEST(FaultLayer, ExhaustedRetryBudgetThrowsWithExactBackoff) {
  Rig r;
  r.fs.armFaults(arming(1.0, {}, /*maxAttempts=*/3, /*backoff=*/0.5));
  bool threw = false;
  const double elapsed = r.w.run([](StorageSystem& f, bool& out) -> sim::Task<void> {
    try {
      auto wr = f.write(0, "doomed.dat", 1_MB);
      co_await std::move(wr);
    } catch (const StorageFaultError&) {
      out = true;
    }
  }(r.fs, threw));
  EXPECT_TRUE(threw);
  // Every attempt faults instantly at the top of the stack, so the whole op
  // is exactly the two backoffs: 0.5 * 2^0 + 0.5 * 2^1.
  EXPECT_DOUBLE_EQ(elapsed, 1.5);
  const LayerMetrics* inject = r.fs.metrics().findLayer("fault/inject");
  const LayerMetrics* retry = r.fs.metrics().findLayer("fault/retry");
  ASSERT_NE(inject, nullptr);
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(inject->faultsInjected, 3u);
  EXPECT_EQ(retry->faultsRetried, 2u);
  EXPECT_EQ(retry->faultsExhausted, 1u);
}

TEST(FaultLayer, OpsArrivingInsideAnOutageStallToItsEnd) {
  Rig r;
  r.fs.armFaults(arming(0.0, {{10.0, 25.0}}));
  double readStart = -1.0;
  double readEnd = -1.0;
  r.w.run([](MiniCluster& cl, StorageSystem& f, double& start,
             double& end) -> sim::Task<void> {
    auto wr = f.write(0, "a.dat", 1_MB);
    co_await std::move(wr);  // t ~ 0: before the window, no stall
    co_await cl.sim.delay(sim::Duration::fromSeconds(12.0));
    start = cl.sim.now().asSeconds();
    auto rd = f.read(0, "a.dat");
    co_await std::move(rd);  // arrives at t = 12, inside [10, 25)
    end = cl.sim.now().asSeconds();
  }(r.w, r.fs, readStart, readEnd));
  // The write at t ~ 0 costs a little simulated time, so the read lands a
  // hair past t = 12 — still well inside the window.
  EXPECT_GE(readStart, 12.0);
  EXPECT_LT(readStart, 13.0);
  EXPECT_GE(readEnd, 25.0);
  const LayerMetrics* inject = r.fs.metrics().findLayer("fault/inject");
  ASSERT_NE(inject, nullptr);
  EXPECT_EQ(inject->outageStalls, 1u);
  // The stall books exactly the remaining window as queue time.
  EXPECT_DOUBLE_EQ(inject->queueSeconds, 25.0 - readStart);
}

TEST(FaultLayer, OpsOutsideOutagesNeverStall) {
  Rig r;
  r.fs.armFaults(arming(0.0, {{1000.0, 1100.0}}));
  r.w.run([](StorageSystem& f) -> sim::Task<void> {
    auto wr = f.write(0, "b.dat", 1_MB);
    co_await std::move(wr);
    auto rd = f.read(0, "b.dat");
    co_await std::move(rd);
  }(r.fs));
  const LayerMetrics* inject = r.fs.metrics().findLayer("fault/inject");
  ASSERT_NE(inject, nullptr);
  EXPECT_EQ(inject->outageStalls, 0u);
  EXPECT_EQ(inject->faultsInjected, 0u);
}

TEST(FaultLayer, FaultDrawsAreSeedDeterministic) {
  auto countFaults = [] {
    Rig r;
    r.fs.armFaults(arming(0.3));
    r.w.run([](StorageSystem& f) -> sim::Task<void> {
      for (int i = 0; i < 40; ++i) {
        try {
          auto wr = f.write(0, "f" + std::to_string(i), 1_MB);
          co_await std::move(wr);
        } catch (const StorageFaultError&) {
          // p = 0.3 over 4 attempts occasionally exhausts the budget;
          // the draw sequence (and thus the count) is still fixed.
        }
      }
    }(r.fs));
    return r.fs.metrics().findLayer("fault/inject")->faultsInjected;
  };
  const auto a = countFaults();
  const auto b = countFaults();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace wfs::storage
