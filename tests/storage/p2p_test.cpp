#include "storage/p2p/p2p_fs.hpp"

#include <gtest/gtest.h>

#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

using testing::MiniCluster;

struct P2pWorld {
  MiniCluster w{{.nodes = 4, .zeroDiskOverheads = true}};
  P2pFs fs{w.sim, w.fabric, w.nodes};
};

TEST(P2p, OutputStaysOnProducer) {
  P2pWorld p;
  p.w.run(p.fs.write(2, "out.dat", 10_MB));
  ASSERT_EQ(p.fs.replicas("out.dat").size(), 1u);
  EXPECT_EQ(p.fs.replicas("out.dat").front(), 2);
  EXPECT_EQ(p.fs.localityHint(2, "out.dat"), 10_MB);
  EXPECT_EQ(p.fs.localityHint(0, "out.dat"), 0);
}

TEST(P2p, LocalReadNeedsNoTransfer) {
  P2pWorld p;
  p.w.run([](P2pFs& f) -> sim::Task<void> {
    co_await f.write(1, "x", 10_MB);
    co_await f.read(1, "x");
  }(p.fs));
  EXPECT_EQ(p.fs.pullCount(), 0u);
  EXPECT_EQ(p.fs.metrics().localReads, 1u);
}

TEST(P2p, RemoteReadPullsDirectlyFromProducer) {
  P2pWorld p;
  const double t = p.w.run([](P2pFs& f) -> sim::Task<void> {
    co_await f.write(0, "big", 100_MB);
    co_await f.read(3, "big");
  }(p.fs));
  EXPECT_EQ(p.fs.pullCount(), 1u);
  // 100 MB over the 100 MB/s NICs plus staging: comfortably over 1 s.
  EXPECT_GT(t, 1.0);
  EXPECT_LT(t, 1.6);
}

TEST(P2p, PulledCopyIsReusedLocally) {
  P2pWorld p;
  p.w.run([](P2pFs& f) -> sim::Task<void> {
    co_await f.write(0, "shared", 50_MB);
    co_await f.read(3, "shared");
    co_await f.read(3, "shared");  // second read is local
  }(p.fs));
  EXPECT_EQ(p.fs.pullCount(), 1u);
  EXPECT_EQ(p.fs.replicas("shared").size(), 2u);
}

TEST(P2p, PreloadedInputsAvailableEverywhere) {
  P2pWorld p;
  p.fs.preload("in.dat", 10_MB);
  p.w.run([](P2pFs& f) -> sim::Task<void> {
    co_await f.read(0, "in.dat");
    co_await f.read(3, "in.dat");
  }(p.fs));
  EXPECT_EQ(p.fs.pullCount(), 0u);
}

TEST(P2p, MissingReplicaIsAnError) {
  P2pWorld p;
  bool threw = false;
  p.w.run([](P2pFs& f, bool& flag) -> sim::Task<void> {
    try {
      co_await f.read(0, "never-written");
    } catch (const std::out_of_range&) {
      flag = true;  // not even in the catalog
    }
  }(p.fs, threw));
  EXPECT_TRUE(threw);
}

TEST(P2p, ScratchStaysLocalAndIsDiscardable) {
  P2pWorld p;
  p.w.run(p.fs.scratchRoundTrip(1, "tmp1", 20_MB));
  p.fs.discard(1, "tmp1");
  EXPECT_EQ(p.fs.pullCount(), 0u);
  EXPECT_EQ(p.fs.metrics().localReads, 1u);
}

}  // namespace
}  // namespace wfs::storage
