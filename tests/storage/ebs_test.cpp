#include "storage/ebs/ebs_fs.hpp"

#include <gtest/gtest.h>

#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

using testing::MiniCluster;

struct EbsWorld {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  EbsFs fs{w.sim, w.net, w.nodes};
};

TEST(Ebs, NoFirstWritePenalty) {
  EbsWorld e;
  // 70 MB at the 70 MB/s volume rate: ~1 s for the FIRST write (ephemeral
  // RAID-0 would take ~0.9 s only after initialization; fresh it is 80 MB/s
  // aggregate but a single raw disk would be 20 MB/s).
  const double t1 = e.w.run(e.fs.write(0, "a", 70_MB));
  EXPECT_NEAR(t1, 1.0, 0.05);
  // Second write of the same size costs the same: no warm/cold distinction.
  const double t2 = e.w.run(e.fs.write(0, "b", 70_MB)) - t1;
  EXPECT_NEAR(t2, 1.0, 0.05);
}

TEST(Ebs, ReadsHitPageCacheThenVolume) {
  EbsWorld e;
  e.fs.preload("in", 70_MB);
  const double t1 = e.w.run(e.fs.read(0, "in"));
  EXPECT_NEAR(t1, 1.0, 0.1);  // volume-bound
  const double t2 = e.w.run(e.fs.read(0, "in")) - t1;
  EXPECT_LT(t2, 0.1);  // page cache
  EXPECT_EQ(e.fs.metrics().cacheHits, 1u);
}

TEST(Ebs, IoRequestAccounting) {
  EbsWorld e;
  e.w.run(e.fs.write(0, "x", 1280_KiB));  // 10 x 128 KiB units
  EXPECT_EQ(e.fs.ioRequests(), 10u);
  EXPECT_NEAR(e.fs.ioRequestCost(), 10.0 / 1e6 * 0.10, 1e-12);
}

TEST(Ebs, CrossNodeReadRejected) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  EbsFs fs{w.sim, w.net, w.nodes};
  bool threw = false;
  w.run([](EbsFs& f, bool& flag) -> sim::Task<void> {
    co_await f.write(0, "mine", 1_MB);
    try {
      co_await f.read(1, "mine");
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(fs, threw));
  EXPECT_TRUE(threw);
}

TEST(Ebs, DiscardDropsCacheOnly) {
  EbsWorld e;
  e.w.run(e.fs.write(0, "t", 10_MB));
  e.fs.discard(0, "t");
  // Still in the catalog; next read goes to the volume again.
  const double t0 = e.w.sim.now().asSeconds();
  e.w.run(e.fs.read(0, "t"));
  EXPECT_GT(e.w.sim.now().asSeconds() - t0, 0.1);
}

}  // namespace
}  // namespace wfs::storage
