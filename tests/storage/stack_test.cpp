#include "storage/stack/layer_stack.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/gluster/gluster_fs.hpp"
#include "storage/stack/lru_cache_layer.hpp"
#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

using testing::MiniCluster;

/// Test layer that records traversal and forwards.
class RecordingLayer final : public IoLayer {
 public:
  RecordingLayer(std::string tag, std::vector<std::string>& log)
      : tag_{std::move(tag)}, log_{&log} {}

  [[nodiscard]] std::string name() const override { return "test/" + tag_; }

 protected:
  sim::Task<void> process(Op& op) override {
    log_->push_back(tag_ + (op.kind == OpKind::kRead ? ":read:" : ":write:") +
                    sim_->files().name(op.file));
    if (next_ != nullptr) {
      auto fwd = forward(op);
      co_await std::move(fwd);
    }
  }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
};

[[nodiscard]] std::unique_ptr<LruCacheLayer> makeIoCache(Bytes capacity) {
  LruCacheLayer::Config cfg;
  cfg.name = "performance/io-cache";
  cfg.capacity = capacity;
  cfg.memRate = GBps(1);
  cfg.hitCountsCacheHit = true;
  cfg.hitCountsLocalRead = true;
  cfg.missCountsCacheMiss = true;
  return std::make_unique<LruCacheLayer>(cfg);
}

TEST(LayerStackOrder, CallsDescendTopToBottom) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  std::vector<std::string> log;
  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(std::make_unique<RecordingLayer>("top", log));
  layers.push_back(std::make_unique<RecordingLayer>("mid", log));
  layers.push_back(std::make_unique<RecordingLayer>("bot", log));
  LayerStack stack{w.sim, metrics, std::move(layers)};
  EXPECT_EQ(stack.depth(), 3u);
  w.run(stack.write(0, "f", 1_MB));
  w.run(stack.read(0, "f", 1_MB));
  EXPECT_EQ(log, (std::vector<std::string>{"top:write:f", "mid:write:f", "bot:write:f",
                                           "top:read:f", "mid:read:f", "bot:read:f"}));
}

TEST(LayerStackOrder, LayerCanServiceWithoutForwarding) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  std::vector<std::string> log;
  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(makeIoCache(64_MiB));
  layers.push_back(std::make_unique<RecordingLayer>("below", log));
  LayerStack stack{w.sim, metrics, std::move(layers)};
  // Write passes through (and caches); first read after a write is a hit
  // and must NOT reach the lower layer.
  w.run(stack.write(0, "x", 1_MB));
  w.run(stack.read(0, "x", 1_MB));
  EXPECT_EQ(log, (std::vector<std::string>{"below:write:x"}));
  EXPECT_EQ(metrics.cacheHits, 1u);
}

TEST(LayerStackOrder, IoCacheMissForwardsThenCaches) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  std::vector<std::string> log;
  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(makeIoCache(64_MiB));
  layers.push_back(std::make_unique<RecordingLayer>("below", log));
  LayerStack stack{w.sim, metrics, std::move(layers)};
  w.run(stack.read(0, "cold", 1_MB));
  w.run(stack.read(0, "cold", 1_MB));
  // One miss reaching the lower layer, then a hit served above.
  EXPECT_EQ(log, (std::vector<std::string>{"below:read:cold"}));
  EXPECT_EQ(metrics.cacheMisses, 1u);
  EXPECT_EQ(metrics.cacheHits, 1u);
  // The same outcomes land in the io-cache's own ledger slot.
  const LayerMetrics* lm = metrics.findLayer("performance/io-cache");
  ASSERT_NE(lm, nullptr);
  EXPECT_EQ(lm->cacheMisses, 1u);
  EXPECT_EQ(lm->cacheHits, 1u);
  EXPECT_EQ(lm->readOps, 2u);
}

TEST(LayerStackOrder, NamesIdentifyLayers) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  GlusterFs fs{w.sim, w.fabric, w.nodes, GlusterMode::kDistribute};
  auto& stack = fs.clientStack(0);
  ASSERT_EQ(stack.depth(), 2u);
  EXPECT_EQ(stack.layer(0)->name(), "performance/io-cache");
  EXPECT_EQ(stack.layer(1)->name(), "cluster/dht");
  EXPECT_EQ(stack.layer(0)->next(), stack.layer(1));
  EXPECT_EQ(stack.layer(1)->next(), nullptr);
  EXPECT_EQ(stack.find("cluster/dht"), stack.layer(1));
  EXPECT_EQ(stack.find("no/such/layer"), nullptr);
}

TEST(LayerStackOrder, OversizedFileBypassesIoCache) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  std::vector<std::string> log;
  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(makeIoCache(4_MiB));
  layers.push_back(std::make_unique<RecordingLayer>("below", log));
  LayerStack stack{w.sim, metrics, std::move(layers)};
  w.run(stack.read(0, "huge", 100_MB));
  w.run(stack.read(0, "huge", 100_MB));
  // Never fits the 4 MiB io-cache: both reads reach the lower layer.
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(metrics.cacheHits, 0u);
}

TEST(LayerStackOrder, DiscardControlEvictsCachedEntry) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  std::vector<std::string> log;
  std::vector<std::unique_ptr<IoLayer>> layers;
  layers.push_back(makeIoCache(64_MiB));
  layers.push_back(std::make_unique<RecordingLayer>("below", log));
  LayerStack stack{w.sim, metrics, std::move(layers)};
  w.run(stack.write(0, "x", 1_MB));
  auto& cache = static_cast<LruCacheLayer&>(*stack.layer(0));
  const sim::FileId x = w.sim.files().find("x");
  EXPECT_TRUE(cache.cached(x));
  stack.discard(0, "x");
  EXPECT_FALSE(cache.cached(x));
  // The discard itself is ledgered on every layer it traversed.
  const LayerMetrics* lm = metrics.findLayer("performance/io-cache");
  ASSERT_NE(lm, nullptr);
  EXPECT_EQ(lm->discardOps, 1u);
}

}  // namespace
}  // namespace wfs::storage
