#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "storage/base/storage_system.hpp"
#include "storage/ebs/ebs_fs.hpp"
#include "storage/gluster/gluster_fs.hpp"
#include "storage/local/local_fs.hpp"
#include "storage/nfs/nfs_fs.hpp"
#include "storage/p2p/p2p_fs.hpp"
#include "storage/pvfs/pvfs_fs.hpp"
#include "storage/s3/s3_fs.hpp"
#include "storage/xtreemfs/xtreem_fs.hpp"
#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

/// Every data-sharing option must honor the same contract regardless of
/// its layer composition: write-once names with the offending path in the
/// error, honest discard (a dropped file costs at least a warm read to get
/// back), free preload, and a locality hint bounded by the file size.
struct BackendCase {
  const char* label;
  std::unique_ptr<StorageSystem> (*make)(testing::MiniCluster&);
};

const BackendCase kBackends[] = {
    {"local",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<LocalFs>(w.sim, w.nodes);
     }},
    {"s3",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<S3Fs>(w.sim, w.net, w.nodes);
     }},
    {"nfs",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<NfsFs>(w.sim, w.fabric, w.nodes,
                                      w.makeHost("nfs-server", 16_GB, MBps(100)));
     }},
    {"gluster_nufa",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<GlusterFs>(w.sim, w.fabric, w.nodes, GlusterMode::kNufa);
     }},
    {"gluster_dist",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<GlusterFs>(w.sim, w.fabric, w.nodes,
                                          GlusterMode::kDistribute);
     }},
    {"pvfs",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<PvfsFs>(w.sim, w.fabric, w.nodes);
     }},
    {"xtreemfs",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<XtreemFs>(w.sim, w.fabric, w.nodes);
     }},
    {"p2p",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<P2pFs>(w.sim, w.fabric, w.nodes);
     }},
    {"ebs",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<EbsFs>(w.sim, w.net, w.nodes);
     }},
};

class StackContract : public ::testing::TestWithParam<BackendCase> {
 protected:
  StackContract() : fs{GetParam().make(w)} {}

  testing::MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  std::unique_ptr<StorageSystem> fs;
};

TEST_P(StackContract, WriteOnceRejectsRecreateNamingThePath) {
  std::string msg;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    auto first = f.write(0, "dup.dat", 20_MB);
    co_await std::move(first);
    try {
      auto again = f.write(0, "dup.dat", 20_MB);
      co_await std::move(again);
    } catch (const std::logic_error& e) {
      out = e.what();
    }
  }(*fs, msg));
  EXPECT_NE(msg.find("dup.dat"), std::string::npos) << "message was: " << msg;
}

TEST_P(StackContract, LookupMissNamesThePath) {
  std::string msg;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    try {
      auto rd = f.read(0, "never-written.dat");
      co_await std::move(rd);
    } catch (const std::out_of_range& e) {
      out = e.what();
    }
  }(*fs, msg));
  EXPECT_NE(msg.find("never-written.dat"), std::string::npos) << "message was: " << msg;
}

TEST_P(StackContract, DiscardedFileReadPaysAtLeastWarmCost) {
  double warm = -1.0;
  double cold = -1.0;
  w.run([](testing::MiniCluster& cl, StorageSystem& f, double& warmOut,
           double& coldOut) -> sim::Task<void> {
    auto wr = f.write(0, "tmp.dat", 20_MB);
    co_await std::move(wr);
    double mark = cl.sim.now().asSeconds();
    auto r1 = f.read(0, "tmp.dat");
    co_await std::move(r1);
    warmOut = cl.sim.now().asSeconds() - mark;
    f.discard(0, "tmp.dat");
    mark = cl.sim.now().asSeconds();
    auto r2 = f.read(0, "tmp.dat");
    co_await std::move(r2);
    coldOut = cl.sim.now().asSeconds() - mark;
  }(w, *fs, warm, cold));
  ASSERT_GE(warm, 0.0);
  ASSERT_GE(cold, 0.0);
  // Caches may not pretend the discarded data is still resident: the
  // re-read must pay at least as much as the warm read did.
  EXPECT_GE(cold + 1e-9, warm);
}

TEST_P(StackContract, PreloadIsFreeAndCataloged) {
  const double before = w.sim.now().asSeconds();
  fs->preload("input/staged.dat", 30_MB);
  EXPECT_EQ(w.sim.now().asSeconds(), before);
  EXPECT_TRUE(fs->exists("input/staged.dat"));
  EXPECT_EQ(fs->sizeOf("input/staged.dat"), 30_MB);
  // Pre-staged data is readable from any node at finite simulated cost.
  const double t = w.run(fs->read(0, "input/staged.dat"));
  EXPECT_GE(t, before);
}

TEST_P(StackContract, LocalityHintBoundedByFileSize) {
  EXPECT_EQ(fs->localityHint(0, "unknown.dat"), 0);
  w.run(fs->write(0, "loc.dat", 20_MB));
  for (int nodeIdx = 0; nodeIdx < fs->nodeCount(); ++nodeIdx) {
    const Bytes hint = fs->localityHint(nodeIdx, "loc.dat");
    EXPECT_GE(hint, 0) << "node " << nodeIdx;
    EXPECT_LE(hint, 20_MB) << "node " << nodeIdx;
  }
}

TEST_P(StackContract, ScratchRoundTripRegistersWriteOnce) {
  std::string msg;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    auto rt = f.scratchRoundTrip(0, "job/scratch.tmp", 10_MB);
    co_await std::move(rt);
    try {
      auto again = f.write(0, "job/scratch.tmp", 10_MB);
      co_await std::move(again);
    } catch (const std::logic_error& e) {
      out = e.what();
    }
  }(*fs, msg));
  EXPECT_TRUE(fs->exists("job/scratch.tmp"));
  EXPECT_NE(msg.find("job/scratch.tmp"), std::string::npos) << "message was: " << msg;
}

TEST_P(StackContract, ZeroFaultArmingIsANoOp) {
  // Twin cluster, same backend, no fault layers at all.
  testing::MiniCluster bare{{.nodes = 2, .zeroDiskOverheads = true}};
  std::unique_ptr<StorageSystem> plain = GetParam().make(bare);
  // Arm the fixture's backend with a zero-probability, zero-outage plan:
  // the RetryLayer/FaultLayer pair must not shift a single event.
  fs->armFaults(FaultArming{.seed = 123,
                            .opFaultProb = 0.0,
                            .outages = {},
                            .maxOpAttempts = 4,
                            .retryBackoffSeconds = 0.5});
  auto workload = [](StorageSystem& f) -> sim::Task<void> {
    auto w0 = f.write(0, "noop/a.dat", 20_MB);
    co_await std::move(w0);
    auto w1 = f.write(1, "noop/b.dat", 8_MB);
    co_await std::move(w1);
    auto r0 = f.read(0, "noop/a.dat");
    co_await std::move(r0);
    auto r1 = f.read(0, "noop/a.dat");  // warm re-read (cache path)
    co_await std::move(r1);
    auto rt = f.scratchRoundTrip(0, "noop/tmp.dat", 4_MB);
    co_await std::move(rt);
    f.discard(0, "noop/tmp.dat");
    auto r2 = f.read(1, "noop/b.dat");
    co_await std::move(r2);
  };
  const double armed = w.run(workload(*fs));
  const double unarmed = bare.run(workload(*plain));
  EXPECT_EQ(armed, unarmed);  // byte-identical timing, not just close
  EXPECT_EQ(fs->metrics().bytesRead, plain->metrics().bytesRead);
  EXPECT_EQ(fs->metrics().bytesWritten, plain->metrics().bytesWritten);
  const LayerMetrics* inject = fs->metrics().findLayer("fault/inject");
  ASSERT_NE(inject, nullptr);
  EXPECT_EQ(inject->faultsInjected, 0u);
  EXPECT_EQ(inject->outageStalls, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StackContract, ::testing::ValuesIn(kBackends),
                         [](const ::testing::TestParamInfo<BackendCase>& paramInfo) {
                           return std::string{paramInfo.param.label};
                         });

}  // namespace
}  // namespace wfs::storage
