#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "storage/base/errors.hpp"
#include "storage/base/storage_system.hpp"
#include "storage/ebs/ebs_fs.hpp"
#include "storage/gluster/gluster_fs.hpp"
#include "storage/local/local_fs.hpp"
#include "storage/nfs/nfs_fs.hpp"
#include "storage/p2p/p2p_fs.hpp"
#include "storage/pvfs/pvfs_fs.hpp"
#include "storage/s3/s3_fs.hpp"
#include "storage/xtreemfs/xtreem_fs.hpp"
#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

/// Every data-sharing option must honor the same contract regardless of
/// its layer composition: write-once names with the offending path in the
/// error, honest discard (a dropped file costs at least a warm read to get
/// back), free preload, and a locality hint bounded by the file size.
struct BackendCase {
  const char* label;
  std::unique_ptr<StorageSystem> (*make)(testing::MiniCluster&);
  /// Cluster size the composition needs (EC wants k+m nodes).
  int nodes = 2;
};

const BackendCase kBackends[] = {
    {"local",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<LocalFs>(w.sim, w.nodes);
     }},
    {"s3",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<S3Fs>(w.sim, w.net, w.nodes);
     }},
    {"nfs",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<NfsFs>(w.sim, w.fabric, w.nodes,
                                      w.makeHost("nfs-server", 16_GB, MBps(100)));
     }},
    {"gluster_nufa",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<GlusterFs>(w.sim, w.fabric, w.nodes, GlusterMode::kNufa);
     }},
    {"gluster_dist",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<GlusterFs>(w.sim, w.fabric, w.nodes,
                                          GlusterMode::kDistribute);
     }},
    {"pvfs",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<PvfsFs>(w.sim, w.fabric, w.nodes);
     }},
    {"xtreemfs",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<XtreemFs>(w.sim, w.fabric, w.nodes);
     }},
    {"p2p",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<P2pFs>(w.sim, w.fabric, w.nodes);
     }},
    {"ebs",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       return std::make_unique<EbsFs>(w.sim, w.net, w.nodes);
     }},
    // Redundant compositions honor the same contract as the paper's plain
    // volumes: replication and erasure coding may change costs, never
    // semantics.
    {"gluster_nufa_r2",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       GlusterFs::Config cfg;
       cfg.replicas = 2;
       return std::make_unique<GlusterFs>(w.sim, w.fabric, w.nodes, GlusterMode::kNufa,
                                          cfg);
     }},
    {"gluster_dist_r2",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       GlusterFs::Config cfg;
       cfg.replicas = 2;
       return std::make_unique<GlusterFs>(w.sim, w.fabric, w.nodes,
                                          GlusterMode::kDistribute, cfg);
     }},
    {"pvfs_ec21",
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       PvfsFs::Config cfg;
       cfg.ecK = 2;
       cfg.ecM = 1;
       return std::make_unique<PvfsFs>(w.sim, w.fabric, w.nodes, cfg);
     },
     3},
};

class StackContract : public ::testing::TestWithParam<BackendCase> {
 protected:
  StackContract()
      : w{{.nodes = GetParam().nodes, .zeroDiskOverheads = true}},
        fs{GetParam().make(w)} {}

  testing::MiniCluster w;
  std::unique_ptr<StorageSystem> fs;
};

TEST_P(StackContract, WriteOnceRejectsRecreateNamingThePath) {
  std::string msg;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    auto first = f.write(0, "dup.dat", 20_MB);
    co_await std::move(first);
    try {
      auto again = f.write(0, "dup.dat", 20_MB);
      co_await std::move(again);
    } catch (const std::logic_error& e) {
      out = e.what();
    }
  }(*fs, msg));
  EXPECT_NE(msg.find("dup.dat"), std::string::npos) << "message was: " << msg;
}

TEST_P(StackContract, LookupMissNamesThePath) {
  std::string msg;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    try {
      auto rd = f.read(0, "never-written.dat");
      co_await std::move(rd);
    } catch (const std::out_of_range& e) {
      out = e.what();
    }
  }(*fs, msg));
  EXPECT_NE(msg.find("never-written.dat"), std::string::npos) << "message was: " << msg;
}

TEST_P(StackContract, DiscardedFileReadPaysAtLeastWarmCost) {
  double warm = -1.0;
  double cold = -1.0;
  w.run([](testing::MiniCluster& cl, StorageSystem& f, double& warmOut,
           double& coldOut) -> sim::Task<void> {
    auto wr = f.write(0, "tmp.dat", 20_MB);
    co_await std::move(wr);
    double mark = cl.sim.now().asSeconds();
    auto r1 = f.read(0, "tmp.dat");
    co_await std::move(r1);
    warmOut = cl.sim.now().asSeconds() - mark;
    f.discard(0, "tmp.dat");
    mark = cl.sim.now().asSeconds();
    auto r2 = f.read(0, "tmp.dat");
    co_await std::move(r2);
    coldOut = cl.sim.now().asSeconds() - mark;
  }(w, *fs, warm, cold));
  ASSERT_GE(warm, 0.0);
  ASSERT_GE(cold, 0.0);
  // Caches may not pretend the discarded data is still resident: the
  // re-read must pay at least as much as the warm read did.
  EXPECT_GE(cold + 1e-9, warm);
}

TEST_P(StackContract, PreloadIsFreeAndCataloged) {
  const double before = w.sim.now().asSeconds();
  fs->preload("input/staged.dat", 30_MB);
  EXPECT_EQ(w.sim.now().asSeconds(), before);
  EXPECT_TRUE(fs->exists("input/staged.dat"));
  EXPECT_EQ(fs->sizeOf("input/staged.dat"), 30_MB);
  // Pre-staged data is readable from any node at finite simulated cost.
  const double t = w.run(fs->read(0, "input/staged.dat"));
  EXPECT_GE(t, before);
}

TEST_P(StackContract, LocalityHintBoundedByFileSize) {
  EXPECT_EQ(fs->localityHint(0, "unknown.dat"), 0);
  w.run(fs->write(0, "loc.dat", 20_MB));
  for (int nodeIdx = 0; nodeIdx < fs->nodeCount(); ++nodeIdx) {
    const Bytes hint = fs->localityHint(nodeIdx, "loc.dat");
    EXPECT_GE(hint, 0) << "node " << nodeIdx;
    EXPECT_LE(hint, 20_MB) << "node " << nodeIdx;
  }
}

TEST_P(StackContract, ScratchRoundTripRegistersWriteOnce) {
  std::string msg;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    auto rt = f.scratchRoundTrip(0, "job/scratch.tmp", 10_MB);
    co_await std::move(rt);
    try {
      auto again = f.write(0, "job/scratch.tmp", 10_MB);
      co_await std::move(again);
    } catch (const std::logic_error& e) {
      out = e.what();
    }
  }(*fs, msg));
  EXPECT_TRUE(fs->exists("job/scratch.tmp"));
  EXPECT_NE(msg.find("job/scratch.tmp"), std::string::npos) << "message was: " << msg;
}

TEST_P(StackContract, ZeroFaultArmingIsANoOp) {
  // Twin cluster, same backend, no fault layers at all.
  testing::MiniCluster bare{{.nodes = GetParam().nodes, .zeroDiskOverheads = true}};
  std::unique_ptr<StorageSystem> plain = GetParam().make(bare);
  // Arm the fixture's backend with a zero-probability, zero-outage plan:
  // the RetryLayer/FaultLayer pair must not shift a single event.
  fs->armFaults(FaultArming{.seed = 123,
                            .opFaultProb = 0.0,
                            .outages = {},
                            .maxOpAttempts = 4,
                            .retryBackoffSeconds = 0.5});
  auto workload = [](StorageSystem& f) -> sim::Task<void> {
    auto w0 = f.write(0, "noop/a.dat", 20_MB);
    co_await std::move(w0);
    auto w1 = f.write(1, "noop/b.dat", 8_MB);
    co_await std::move(w1);
    auto r0 = f.read(0, "noop/a.dat");
    co_await std::move(r0);
    auto r1 = f.read(0, "noop/a.dat");  // warm re-read (cache path)
    co_await std::move(r1);
    auto rt = f.scratchRoundTrip(0, "noop/tmp.dat", 4_MB);
    co_await std::move(rt);
    f.discard(0, "noop/tmp.dat");
    auto r2 = f.read(1, "noop/b.dat");
    co_await std::move(r2);
  };
  const double armed = w.run(workload(*fs));
  const double unarmed = bare.run(workload(*plain));
  EXPECT_EQ(armed, unarmed);  // byte-identical timing, not just close
  EXPECT_EQ(fs->metrics().bytesRead, plain->metrics().bytesRead);
  EXPECT_EQ(fs->metrics().bytesWritten, plain->metrics().bytesWritten);
  const LayerMetrics* inject = fs->metrics().findLayer("fault/inject");
  ASSERT_NE(inject, nullptr);
  EXPECT_EQ(inject->faultsInjected, 0u);
  EXPECT_EQ(inject->outageStalls, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StackContract, ::testing::ValuesIn(kBackends),
                         [](const ::testing::TestParamInfo<BackendCase>& paramInfo) {
                           return std::string{paramInfo.param.label};
                         });

/// Degraded-operation contract for the redundant compositions: a geometry
/// that advertises surviving `budget` node losses must keep every file
/// readable through exactly that many crash-stops, report the loss exactly
/// once when the budget is exceeded, and fail subsequent reads with an
/// actionable error naming the file.
struct RedundantCase {
  const char* label;
  int nodes;
  /// Crash-stops the geometry absorbs: replicas - 1, or m for k+m EC.
  int budget;
  std::unique_ptr<StorageSystem> (*make)(testing::MiniCluster&);
};

const RedundantCase kRedundant[] = {
    {"gluster_nufa_r2", 2, 1,
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       GlusterFs::Config cfg;
       cfg.replicas = 2;
       return std::make_unique<GlusterFs>(w.sim, w.fabric, w.nodes, GlusterMode::kNufa,
                                          cfg);
     }},
    {"gluster_dist_r3", 3, 2,
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       GlusterFs::Config cfg;
       cfg.replicas = 3;
       return std::make_unique<GlusterFs>(w.sim, w.fabric, w.nodes,
                                          GlusterMode::kDistribute, cfg);
     }},
    {"pvfs_ec21", 3, 1,
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       PvfsFs::Config cfg;
       cfg.ecK = 2;
       cfg.ecM = 1;
       return std::make_unique<PvfsFs>(w.sim, w.fabric, w.nodes, cfg);
     }},
    {"pvfs_ec22", 4, 2,
     [](testing::MiniCluster& w) -> std::unique_ptr<StorageSystem> {
       PvfsFs::Config cfg;
       cfg.ecK = 2;
       cfg.ecM = 2;
       return std::make_unique<PvfsFs>(w.sim, w.fabric, w.nodes, cfg);
     }},
};

class DegradedOperation : public ::testing::TestWithParam<RedundantCase> {
 protected:
  DegradedOperation()
      : w{{.nodes = GetParam().nodes, .zeroDiskOverheads = true}},
        fs{GetParam().make(w)} {}

  testing::MiniCluster w;
  std::unique_ptr<StorageSystem> fs;
};

TEST_P(DegradedOperation, ReadsSurviveLossesWithinBudget) {
  w.run(fs->write(0, "red/data.dat", 12_MB));
  const sim::FileId id = fs->files().find("red/data.dat");
  for (int node = 0; node < GetParam().budget; ++node) {
    const auto lost = fs->failNode(node);
    EXPECT_EQ(std::count(lost.begin(), lost.end(), id), 0) << "crash of node " << node;
    EXPECT_TRUE(fs->available(id)) << "crash of node " << node;
  }
  // A reader outside the crashed set still gets the bytes (degraded is fine).
  const int reader = GetParam().nodes - 1;
  std::string err;
  w.run([](StorageSystem& f, int node, std::string& out) -> sim::Task<void> {
    try {
      auto rd = f.read(node, "red/data.dat");
      co_await std::move(rd);
    } catch (const std::exception& e) {
      out = e.what();
    }
  }(*fs, reader, err));
  EXPECT_EQ(err, "");
}

TEST_P(DegradedOperation, LossPastBudgetReportedOnceAndFailsActionably) {
  w.run(fs->write(0, "red/past.dat", 12_MB));
  const sim::FileId id = fs->files().find("red/past.dat");
  int reported = 0;
  for (int node = 0; node <= GetParam().budget; ++node) {
    const auto lost = fs->failNode(node);
    reported += static_cast<int>(std::count(lost.begin(), lost.end(), id));
  }
  // The crash that spent the last copy reports the loss; no other crash
  // double-counts it.
  EXPECT_EQ(reported, 1);
  EXPECT_FALSE(fs->available(id));
  const int reader = GetParam().nodes - 1;
  if (reader <= GetParam().budget) fs->restoreNode(reader);
  std::string msg;
  w.run([](StorageSystem& f, int node, std::string& out) -> sim::Task<void> {
    try {
      auto rd = f.read(node, "red/past.dat");
      co_await std::move(rd);
    } catch (const FileLostError& e) {
      out = e.what();
    }
  }(*fs, reader, msg));
  EXPECT_NE(msg.find("red/past.dat"), std::string::npos) << "message was: " << msg;
  EXPECT_NE(msg.find("lost"), std::string::npos) << "message was: " << msg;
}

INSTANTIATE_TEST_SUITE_P(Redundant, DegradedOperation, ::testing::ValuesIn(kRedundant),
                         [](const ::testing::TestParamInfo<RedundantCase>& paramInfo) {
                           return std::string{paramInfo.param.label};
                         });

/// Regression: a crash that lands between a scratch write and its re-read
/// must surface as FileLostError from scratchRoundTrip (and the loss must be
/// reported by exactly one failNode sweep) — it used to be read silently.
TEST(ScratchLossRegression, MidTripCrashSurfacesLostScratch) {
  testing::MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  // Plain PVFS stripes every file across every server with no redundancy,
  // so one server crash is guaranteed to take the in-flight scratch file.
  PvfsFs fs{w.sim, w.fabric, w.nodes};
  std::vector<sim::FileId> lost;
  std::string msg;
  w.run([](testing::MiniCluster& cl, StorageSystem& f, std::vector<sim::FileId>& lostOut,
           std::string& out) -> sim::Task<void> {
    cl.sim.spawn([](sim::Simulator& s, StorageSystem& f2,
                    std::vector<sim::FileId>& sunk) -> sim::Task<void> {
      // 64 MB over a 100 MB/s NIC takes well over 100 ms: this lands
      // mid-write, after the catalog entry exists.
      co_await s.delay(sim::Duration::millis(100));
      sunk = f2.failNode(1);
    }(cl.sim, f, lostOut));
    try {
      auto rt = f.scratchRoundTrip(0, "job/mid.tmp", 64_MB);
      co_await std::move(rt);
    } catch (const FileLostError& e) {
      out = e.what();
    }
  }(w, fs, lost, msg));
  const sim::FileId id = fs.files().find("job/mid.tmp");
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(std::count(lost.begin(), lost.end(), id), 1);
  EXPECT_NE(msg.find("job/mid.tmp"), std::string::npos) << "message was: " << msg;
  EXPECT_NE(msg.find("scratch re-read on node 0"), std::string::npos)
      << "message was: " << msg;
}

}  // namespace
}  // namespace wfs::storage
