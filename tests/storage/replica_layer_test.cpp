#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "storage/base/errors.hpp"
#include "storage/gluster/gluster_fs.hpp"
#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

std::unique_ptr<GlusterFs> makeReplicated(testing::MiniCluster& w, int replicas,
                                          GlusterMode mode = GlusterMode::kNufa) {
  GlusterFs::Config cfg;
  cfg.replicas = replicas;
  return std::make_unique<GlusterFs>(w.sim, w.fabric, w.nodes, mode, cfg);
}

TEST(ReplicaLayer, WriteFansOutToEveryReplica) {
  testing::MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  auto fs = makeReplicated(w, 2);
  w.run(fs->write(0, "fan.dat", 20_MB));
  // The AFR translator sees the op once; each brick stack takes a full copy.
  const LayerMetrics* afr = fs->metrics().findLayer("cluster/afr");
  ASSERT_NE(afr, nullptr);
  EXPECT_EQ(afr->writeOps, 1u);
  EXPECT_EQ(afr->bytesWritten, 20_MB);
  const LayerMetrics* brickTop = fs->metrics().findLayer("brick/page-cache");
  ASSERT_NE(brickTop, nullptr);
  EXPECT_EQ(brickTop->writeOps, 2u);
  EXPECT_EQ(brickTop->bytesWritten, 40_MB);
  const ReplicaState* state = fs->replicaState();
  ASSERT_NE(state, nullptr);
  const sim::FileId id = fs->files().find("fan.dat");
  EXPECT_TRUE(state->hasCopy(id, 0));
  EXPECT_TRUE(state->hasCopy(id, 1));
}

TEST(ReplicaLayer, ReadsPreferTheLocalChild) {
  testing::MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  auto fs = makeReplicated(w, 2);
  // Preload (not write): a write would leave the file in the writer's
  // io-cache and the read would never reach the AFR translator.
  fs->preload("pref.dat", 20_MB);
  w.run(fs->read(0, "pref.dat"));
  w.run(fs->read(1, "pref.dat"));
  // Both readers sit inside the replica set, so both reads are local and
  // each child serves its own.
  const LayerMetrics* afr = fs->metrics().findLayer("cluster/afr");
  ASSERT_NE(afr, nullptr);
  EXPECT_EQ(afr->degradedReads, 0u);
  ASSERT_EQ(afr->childReads.size(), 2u);
  EXPECT_EQ(afr->childReads[0], 1u);
  EXPECT_EQ(afr->childReads[1], 1u);
  EXPECT_EQ(fs->metrics().remoteReads, 0u);
  EXPECT_GE(fs->metrics().localReads, 2u);
}

TEST(ReplicaLayer, FallbackReadAfterChildLossCountsDegraded) {
  testing::MiniCluster w{{.nodes = 3, .zeroDiskOverheads = true}};
  auto fs = makeReplicated(w, 2);
  // NUFA places both primaries on the creator's brick 0; copies on {0, 1}.
  w.run(fs->write(0, "deg/a.dat", 8_MB));
  w.run(fs->write(0, "deg/b.dat", 8_MB));
  const auto lost = fs->failNode(0);
  EXPECT_TRUE(lost.empty());
  // Node 2 is outside the set: it hashes a preferred slot per file, and the
  // file whose preference is the dead child 0 falls back to child 1.
  std::string err;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    try {
      auto ra = f.read(2, "deg/a.dat");
      co_await std::move(ra);
      auto rb = f.read(2, "deg/b.dat");
      co_await std::move(rb);
    } catch (const std::exception& e) {
      out = e.what();
    }
  }(*fs, err));
  EXPECT_EQ(err, "");
  const LayerMetrics* afr = fs->metrics().findLayer("cluster/afr");
  ASSERT_NE(afr, nullptr);
  EXPECT_GE(afr->degradedReads, 1u);
  ASSERT_GE(afr->childReads.size(), 2u);
  EXPECT_EQ(afr->childReads[0], 0u);
  EXPECT_EQ(afr->childReads[1], 2u);
}

TEST(ReplicaLayer, HealRestoresRedundancyAfterReplacement) {
  testing::MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  auto fs = makeReplicated(w, 2);
  w.run(fs->write(0, "heal.dat", 10_MB));
  const sim::FileId id = fs->files().find("heal.dat");

  EXPECT_TRUE(fs->failNode(1).empty());  // survives on brick 0
  EXPECT_TRUE(fs->available(id));
  fs->restoreNode(1);
  EXPECT_FALSE(fs->replicaState()->hasCopy(id, 1));  // replacement brick is empty

  w.run(fs->healNode(1));
  EXPECT_TRUE(fs->replicaState()->hasCopy(id, 1));
  const LayerMetrics* afr = fs->metrics().findLayer("cluster/afr");
  ASSERT_NE(afr, nullptr);
  EXPECT_EQ(afr->healedFiles, 1u);
  EXPECT_EQ(afr->healBytes, 10_MB);

  // Redundancy is genuinely back: losing the original copy now costs
  // nothing, and the healed child serves the read.
  EXPECT_TRUE(fs->failNode(0).empty());
  EXPECT_TRUE(fs->available(id));
  std::string err;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    try {
      auto rd = f.read(1, "heal.dat");
      co_await std::move(rd);
    } catch (const std::exception& e) {
      out = e.what();
    }
  }(*fs, err));
  EXPECT_EQ(err, "");
}

TEST(ReplicaLayer, HealOfHealthyVolumeIsANoOp) {
  testing::MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  auto fs = makeReplicated(w, 2);
  w.run(fs->write(0, "noop.dat", 10_MB));
  const double before = w.sim.now().asSeconds();
  w.run(fs->healNode(1));
  EXPECT_EQ(w.sim.now().asSeconds(), before);
  const LayerMetrics* afr = fs->metrics().findLayer("cluster/afr");
  ASSERT_NE(afr, nullptr);
  EXPECT_EQ(afr->healedFiles, 0u);
  EXPECT_EQ(afr->healBytes, 0u);
}

TEST(ReplicaLayer, ReadPastBudgetNamesFileAndBudget) {
  testing::MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  auto fs = makeReplicated(w, 2);
  w.run(fs->write(0, "x.dat", 4_MB));
  (void)fs->failNode(0);
  (void)fs->failNode(1);
  // Drive the translator stack directly (the catalog would refuse first):
  // with both children down the AFR layer itself must fail actionably.
  std::string msg;
  w.run([](GlusterFs& g, std::string& out) -> sim::Task<void> {
    try {
      auto rd = g.clientStack(0).read(0, "x.dat", 4_MB);
      co_await std::move(rd);
    } catch (const std::runtime_error& e) {
      out = e.what();
    }
  }(*fs, msg));
  EXPECT_NE(msg.find("cluster/afr: no live replica of 'x.dat'"), std::string::npos)
      << "message was: " << msg;
  EXPECT_NE(msg.find("replicas=2"), std::string::npos) << "message was: " << msg;
  EXPECT_NE(msg.find("redundancy budget"), std::string::npos) << "message was: " << msg;
}

}  // namespace
}  // namespace wfs::storage
