#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "storage/base/errors.hpp"
#include "storage/pvfs/pvfs_fs.hpp"
#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

std::unique_ptr<PvfsFs> makeEc(testing::MiniCluster& w, int k, int m) {
  PvfsFs::Config cfg;
  cfg.ecK = k;
  cfg.ecM = m;
  return std::make_unique<PvfsFs>(w.sim, w.fabric, w.nodes, cfg);
}

TEST(ErasureLayer, WritePlacesAFragmentOnEveryServer) {
  testing::MiniCluster w{{.nodes = 3, .zeroDiskOverheads = true}};
  auto fs = makeEc(w, 2, 1);
  w.run(fs->write(0, "frag.dat", 12_MB));
  const ErasureLayer* ec = fs->erasure();
  ASSERT_NE(ec, nullptr);
  const sim::FileId id = fs->files().find("frag.dat");
  for (int node = 0; node < 3; ++node) {
    EXPECT_TRUE(ec->hasFragment(id, node)) << "server " << node;
  }
  const LayerMetrics* lm = fs->metrics().findLayer("cluster/ec");
  ASSERT_NE(lm, nullptr);
  EXPECT_EQ(lm->writeOps, 1u);
  EXPECT_EQ(lm->bytesWritten, 12_MB);
  EXPECT_EQ(lm->degradedReads, 0u);
}

TEST(ErasureLayer, ParityReconstructsReadsAfterServerLoss) {
  testing::MiniCluster w{{.nodes = 3, .zeroDiskOverheads = true}};
  auto fs = makeEc(w, 2, 1);
  // Rotation by file index: a.dat (idx 0) keeps a data fragment on server 0,
  // b.dat (idx 1) only its parity there — one crash exercises both paths.
  w.run(fs->write(0, "ec/a.dat", 8_MB));
  w.run(fs->write(0, "ec/b.dat", 8_MB));
  EXPECT_TRUE(fs->failNode(0).empty());  // m = 1 absorbs one server
  std::string err;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    try {
      auto ra = f.read(2, "ec/a.dat");
      co_await std::move(ra);
      auto rb = f.read(2, "ec/b.dat");
      co_await std::move(rb);
    } catch (const std::exception& e) {
      out = e.what();
    }
  }(*fs, err));
  EXPECT_EQ(err, "");
  const LayerMetrics* lm = fs->metrics().findLayer("cluster/ec");
  ASSERT_NE(lm, nullptr);
  EXPECT_GE(lm->reconstructions, 1u);
  EXPECT_GE(lm->degradedReads, 1u);
}

TEST(ErasureLayer, HealRebuildsMissingFragments) {
  testing::MiniCluster w{{.nodes = 3, .zeroDiskOverheads = true}};
  auto fs = makeEc(w, 2, 1);
  w.run(fs->write(0, "ec/a.dat", 8_MB));
  w.run(fs->write(0, "ec/b.dat", 8_MB));
  const sim::FileId a = fs->files().find("ec/a.dat");
  const sim::FileId b = fs->files().find("ec/b.dat");

  EXPECT_TRUE(fs->failNode(0).empty());
  fs->restoreNode(0);
  EXPECT_FALSE(fs->erasure()->hasFragment(a, 0));  // replacement server is empty

  w.run(fs->healNode(0));
  EXPECT_TRUE(fs->erasure()->hasFragment(a, 0));
  EXPECT_TRUE(fs->erasure()->hasFragment(b, 0));
  const LayerMetrics* lm = fs->metrics().findLayer("cluster/ec");
  ASSERT_NE(lm, nullptr);
  EXPECT_EQ(lm->healedFiles, 2u);
  // One ceil(size/k) = 4 MB fragment rebuilt per file.
  EXPECT_EQ(lm->healBytes, 8_MB);

  // The parity budget is genuinely restored: another single-server loss
  // costs nothing and reads still complete.
  EXPECT_TRUE(fs->failNode(1).empty());
  EXPECT_TRUE(fs->available(a));
  EXPECT_TRUE(fs->available(b));
  std::string err;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    try {
      auto rd = f.read(2, "ec/a.dat");
      co_await std::move(rd);
    } catch (const std::exception& e) {
      out = e.what();
    }
  }(*fs, err));
  EXPECT_EQ(err, "");
}

TEST(ErasureLayer, WritesBornDegradedAreHealedAfterRestore) {
  testing::MiniCluster w{{.nodes = 3, .zeroDiskOverheads = true}};
  auto fs = makeEc(w, 2, 1);
  // A server is down when the write lands: the stripe is stored with k live
  // fragments (still reconstructable) and the missing one owes a heal.
  EXPECT_TRUE(fs->failNode(2).empty());
  w.run(fs->write(0, "born.dat", 8_MB));
  const sim::FileId id = fs->files().find("born.dat");
  EXPECT_FALSE(fs->erasure()->hasFragment(id, 2));

  fs->restoreNode(2);
  w.run(fs->healNode(2));
  EXPECT_TRUE(fs->erasure()->hasFragment(id, 2));

  EXPECT_TRUE(fs->failNode(0).empty());
  EXPECT_TRUE(fs->available(id));
  std::string err;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    try {
      auto rd = f.read(1, "born.dat");
      co_await std::move(rd);
    } catch (const std::exception& e) {
      out = e.what();
    }
  }(*fs, err));
  EXPECT_EQ(err, "");
}

TEST(ErasureLayer, WriteBelowKLiveServersFailsActionably) {
  testing::MiniCluster w{{.nodes = 3, .zeroDiskOverheads = true}};
  auto fs = makeEc(w, 2, 1);
  EXPECT_TRUE(fs->failNode(1).empty());
  EXPECT_TRUE(fs->failNode(2).empty());
  std::string msg;
  w.run([](StorageSystem& f, std::string& out) -> sim::Task<void> {
    try {
      auto wr = f.write(0, "nowhere.dat", 4_MB);
      co_await std::move(wr);
    } catch (const std::runtime_error& e) {
      out = e.what();
    }
  }(*fs, msg));
  EXPECT_NE(msg.find("cluster/ec"), std::string::npos) << "message was: " << msg;
  EXPECT_NE(msg.find("nowhere.dat"), std::string::npos) << "message was: " << msg;
  EXPECT_NE(msg.find("reconstructable"), std::string::npos) << "message was: " << msg;
}

}  // namespace
}  // namespace wfs::storage
