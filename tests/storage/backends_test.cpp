#include <gtest/gtest.h>

#include <memory>

#include "storage/gluster/gluster_fs.hpp"
#include "storage/local/local_fs.hpp"
#include "storage/nfs/nfs_fs.hpp"
#include "storage/pvfs/pvfs_fs.hpp"
#include "storage/s3/s3_fs.hpp"
#include "storage/xtreemfs/xtreem_fs.hpp"
#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

using testing::MiniCluster;

// ---------------- LocalFs ----------------

TEST(LocalFs, RoundTripAndWriteOnce) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  LocalFs fs{w.sim, w.nodes};
  const double t = w.run([](LocalFs& f) -> sim::Task<void> {
    co_await f.write(0, "out.dat", 100_MB);
    co_await f.read(0, "out.dat");
  }(fs));
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(fs.exists("out.dat"));
  EXPECT_EQ(fs.sizeOf("out.dat"), 100_MB);
  EXPECT_EQ(fs.metrics().readOps, 1u);
  EXPECT_EQ(fs.metrics().writeOps, 1u);
}

TEST(LocalFs, CrossNodeReadIsAnError) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  LocalFs fs{w.sim, w.nodes};
  bool threw = false;
  w.run([](LocalFs& f, bool& flag) -> sim::Task<void> {
    co_await f.write(0, "out.dat", 1_MB);
    try {
      co_await f.read(1, "out.dat");
    } catch (const std::logic_error&) {
      flag = true;
    }
  }(fs, threw));
  EXPECT_TRUE(threw);
}

TEST(LocalFs, PreloadedInputReadableEverywhere) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  LocalFs fs{w.sim, w.nodes};
  fs.preload("input.dat", 10_MB);
  const double t = w.run([](LocalFs& f) -> sim::Task<void> {
    co_await f.read(0, "input.dat");
    co_await f.read(1, "input.dat");
  }(fs));
  EXPECT_GT(t, 0.0);
  EXPECT_EQ(fs.localityHint(1, "input.dat"), 10_MB);
}

// ---------------- S3Fs ----------------

struct S3World {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  S3Fs fs{w.sim, w.net, w.nodes};
};

TEST(S3, WriteCountsPutAndCaches) {
  S3World s;
  s.w.run(s.fs.write(0, "out.dat", 25_MB));
  EXPECT_EQ(s.fs.objectStore().putCount(), 1u);
  EXPECT_TRUE(s.fs.cached(0, "out.dat"));
  EXPECT_FALSE(s.fs.cached(1, "out.dat"));
}

TEST(S3, ReadMissDoesGetThenCaches) {
  S3World s;
  s.fs.preload("in.dat", 25_MB);
  const double t1 = s.w.run(s.fs.read(0, "in.dat"));
  EXPECT_EQ(s.fs.objectStore().getCount(), 1u);
  // 60 ms latency + 1 s at the 25 MB/s connection ceiling + staging.
  EXPECT_GT(t1, 1.0);
  // Second read on the same node: no new GET.
  s.w.run(s.fs.read(0, "in.dat"));
  EXPECT_EQ(s.fs.objectStore().getCount(), 1u);
  // But another node must fetch its own copy.
  s.w.run(s.fs.read(1, "in.dat"));
  EXPECT_EQ(s.fs.objectStore().getCount(), 2u);
}

TEST(S3, ProducerReadsOwnOutputFromCache) {
  S3World s;
  s.w.run([](S3Fs& f) -> sim::Task<void> {
    co_await f.write(0, "mid.dat", 10_MB);
    co_await f.read(0, "mid.dat");
  }(s.fs));
  EXPECT_EQ(s.fs.objectStore().getCount(), 0u);
  EXPECT_EQ(s.fs.metrics().cacheHits, 1u);
}

TEST(S3, RequestLatencyDominatesSmallFiles) {
  S3World s;
  for (int i = 0; i < 20; ++i) {
    s.fs.preload("small" + std::to_string(i), 100_KB);
  }
  const double t = s.w.run([](S3Fs& f) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await f.read(0, "small" + std::to_string(i));
    }
  }(s.fs));
  // 20 sequential GETs x 60 ms latency floor.
  EXPECT_GT(t, 1.2);
}

// ---------------- NfsFs ----------------

struct NfsWorld {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  NfsFs fs{w.sim, w.fabric, w.nodes,
           w.makeHost("nfs-server", 16_GB, MBps(100))};
};

TEST(Nfs, WriteGoesToServerMemoryAsync) {
  NfsWorld n;
  // 50 MB: NIC transfer at 100 MB/s (0.5 s) + mem admit; disk flush is
  // asynchronous so completion is ~0.55 s, not disk-bound.
  const double t = n.w.run(n.fs.write(0, "out.dat", 50_MB));
  EXPECT_NEAR(t, 0.55, 0.05);
}

TEST(Nfs, ReadAfterWriteServedFromServerCache) {
  NfsWorld n;
  const double t = n.w.run([](NfsFs& f) -> sim::Task<void> {
    co_await f.write(0, "x.dat", 50_MB);
    co_await f.read(1, "x.dat");
  }(n.fs));
  EXPECT_EQ(n.fs.metrics().cacheHits, 1u);
  // Write ~0.55 s + cached read at NIC speed ~0.5 s.
  EXPECT_NEAR(t, 1.05, 0.1);
}

TEST(Nfs, ColdReadTouchesServerDisk) {
  NfsWorld n;
  n.fs.preload("cold.dat", 31_MB);
  n.w.run(n.fs.read(0, "cold.dat"));
  EXPECT_EQ(n.fs.metrics().cacheMisses, 1u);
}

TEST(Nfs, ConcurrentClientsShareServerNic) {
  NfsWorld n;
  n.fs.preload("a.dat", 100_MB);
  n.fs.preload("b.dat", 100_MB);
  // Warm the server cache from the OPPOSITE clients, so the concurrent
  // readers below miss their own page caches and hit the server.
  n.w.run([](NfsFs& f) -> sim::Task<void> {
    co_await f.read(1, "a.dat");
    co_await f.read(0, "b.dat");
  }(n.fs));
  // Two clients reading different server-cached files: both flow through
  // the one server NIC (100 MB/s) -> ~2 s for 200 MB total.
  double t0 = n.w.sim.now().asSeconds();
  std::vector<sim::Task<void>> both;
  both.push_back(n.fs.read(0, "a.dat"));
  both.push_back(n.fs.read(1, "b.dat"));
  const double t = n.w.run(sim::allOf(n.w.sim, std::move(both)));
  EXPECT_NEAR(t - t0, 2.0, 0.2);
}

TEST(Nfs, ClientPageCacheServesRereadsLocally) {
  NfsWorld n;
  n.fs.preload("reuse.dat", 100_MB);
  const double t1 = n.w.run(n.fs.read(0, "reuse.dat"));
  const double t2 = n.w.run(n.fs.read(0, "reuse.dat")) - t1;
  // Second read: GETATTR revalidation + memory copy, no NIC transfer.
  EXPECT_LT(t2, t1 / 5);
  EXPECT_GE(n.fs.metrics().localReads, 1u);
}

TEST(Nfs, LargeStreamInterferenceDegradesService) {
  NfsWorld n;  // server threads default 8 -> knee at 4 streams
  for (int i = 0; i < 12; ++i) {
    n.fs.preload("big" + std::to_string(i), 300_MB);
  }
  // 12 concurrent 300 MB streams exceed the knee; aggregate service drops
  // below the nominal duplex backplane.
  std::vector<sim::Task<void>> all;
  for (int i = 0; i < 12; ++i) all.push_back(n.fs.read(i % 2, "big" + std::to_string(i)));
  const double t = n.w.run(sim::allOf(n.w.sim, std::move(all)));
  // 3.6 GB at the full 100 MB/s server NIC would be 36 s; interference
  // makes it measurably slower.
  EXPECT_GT(t, 40.0);
}

// ---------------- GlusterFs ----------------

TEST(Gluster, NufaWritesLocally) {
  MiniCluster w{{.nodes = 4, .zeroDiskOverheads = true}};
  GlusterFs fs{w.sim, w.fabric, w.nodes, GlusterMode::kNufa};
  for (int i = 0; i < 4; ++i) {
    w.run(fs.write(i, "out" + std::to_string(i), 10_MB));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(fs.layout().locate(w.sim.files().find("out" + std::to_string(i))), i);
  }
}

TEST(Gluster, DistributeSpreadsByHash) {
  MiniCluster w{{.nodes = 4, .zeroDiskOverheads = true}};
  GlusterFs fs{w.sim, w.fabric, w.nodes, GlusterMode::kDistribute};
  int owners[4] = {0, 0, 0, 0};
  for (int i = 0; i < 200; ++i) {
    const std::string p = "f" + std::to_string(i);
    w.run(fs.write(0, p, 1_MB));
    owners[fs.layout().locate(w.sim.files().find(p))]++;
  }
  for (int o : owners) EXPECT_GT(o, 20);
}

TEST(Gluster, NufaLocalWriteFasterThanDistributeRemote) {
  MiniCluster wn{{.nodes = 4, .zeroDiskOverheads = true}};
  GlusterFs nufa{wn.sim, wn.fabric, wn.nodes, GlusterMode::kNufa};
  MiniCluster wd{{.nodes = 4, .zeroDiskOverheads = true}};
  GlusterFs dist{wd.sim, wd.fabric, wd.nodes, GlusterMode::kDistribute};
  auto writeMany = [](GlusterFs& f) -> sim::Task<void> {
    for (int i = 0; i < 40; ++i) {
      co_await f.write(0, "chain" + std::to_string(i), 20_MB);
    }
  };
  const double tNufa = wn.run(writeMany(nufa));
  const double tDist = wd.run(writeMany(dist));
  // NUFA writes land in the local write-back buffer at memory speed;
  // distribute pushes ~3/4 of bytes through the 100 MB/s NIC.
  EXPECT_LT(tNufa * 2, tDist);
}

TEST(Gluster, RemoteReadCrossesNetworkLocalDoesNot) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  GlusterFs fs{w.sim, w.fabric, w.nodes, GlusterMode::kNufa};
  w.run(fs.write(0, "data", 100_MB));
  // Local read on creator (brick page cache hit, memory speed).
  const double t0 = w.sim.now().asSeconds();
  w.run(fs.read(0, "data"));
  const double tLocal = w.sim.now().asSeconds() - t0;
  // Remote read from node 1 (crosses 100 MB/s NICs).
  const double t1 = w.sim.now().asSeconds();
  w.run(fs.read(1, "data"));
  const double tRemote = w.sim.now().asSeconds() - t1;
  EXPECT_LT(tLocal, tRemote);
  EXPECT_NEAR(tRemote, 1.0, 0.1);
  EXPECT_EQ(fs.metrics().localReads, 1u);
  EXPECT_EQ(fs.metrics().remoteReads, 1u);
}

TEST(Gluster, IoCacheServesRepeatedSmallReads) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  GlusterFs fs{w.sim, w.fabric, w.nodes, GlusterMode::kDistribute};
  fs.preload("small.cfg", 1_MB);
  w.run(fs.read(0, "small.cfg"));
  const auto missesBefore = fs.metrics().cacheMisses;
  w.run(fs.read(0, "small.cfg"));
  EXPECT_EQ(fs.metrics().cacheMisses, missesBefore);
  EXPECT_GE(fs.metrics().cacheHits, 1u);
}

// ---------------- PvfsFs ----------------

TEST(Pvfs, SmallFileCreatePaysPerServerHandshake) {
  MiniCluster w{{.nodes = 8, .zeroDiskOverheads = true}};
  PvfsFs fs{w.sim, w.fabric, w.nodes};
  const double t = w.run(fs.write(0, "tiny.dat", 64_KB));
  // 0.6 ms meta + 8 x 0.5 ms handshakes + I/O: >= 4.6 ms of pure overhead.
  EXPECT_GT(t, 0.0046);
}

TEST(Pvfs, LargeFileStripesAcrossAllServers) {
  MiniCluster w{{.nodes = 4, .zeroDiskOverheads = true}};
  PvfsFs fs{w.sim, w.fabric, w.nodes};
  fs.preload("big.dat", 400_MB);
  const double t = w.run(fs.read(0, "big.dat"));
  // 3/4 of stripes arrive through the client's 100 MB/s NIC: 300 MB -> 3 s;
  // the local quarter overlaps. Well below a serial 4 s, above 2.9 s.
  EXPECT_GT(t, 2.9);
  EXPECT_LT(t, 3.6);
}

TEST(Pvfs, NoCachingMeansRepeatedReadsCostTheSame) {
  MiniCluster w{{.nodes = 4, .zeroDiskOverheads = true}};
  PvfsFs fs{w.sim, w.fabric, w.nodes};
  fs.preload("in.dat", 40_MB);
  const double t1 = w.run(fs.read(0, "in.dat"));
  const double t2 = w.run(fs.read(0, "in.dat")) - t1;
  EXPECT_NEAR(t1, t2, t1 * 0.05);
}

// ---------------- XtreemFs ----------------

TEST(Xtreem, PerOpLatencyAndConnectionCeiling) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  XtreemFs fs{w.sim, w.fabric, w.nodes};
  fs.preload("in.dat", 24_MB);
  const double t = w.run(fs.read(0, "in.dat"));
  // 35 ms op latency + 24 MB at the 12 MB/s connection ceiling = ~2.04 s.
  EXPECT_NEAR(t, 2.04, 0.05);
}

TEST(Xtreem, SlowerThanGlusterForSameWorkload) {
  MiniCluster wx{{.nodes = 2, .zeroDiskOverheads = true}};
  XtreemFs x{wx.sim, wx.fabric, wx.nodes};
  MiniCluster wg{{.nodes = 2, .zeroDiskOverheads = true}};
  GlusterFs g{wg.sim, wg.fabric, wg.nodes, GlusterMode::kNufa};
  auto workload = [](StorageSystem& f) -> sim::Task<void> {
    for (int i = 0; i < 10; ++i) {
      const std::string p = "wf" + std::to_string(i);
      co_await f.write(0, p, 5_MB);
      co_await f.read(0, p);
    }
  };
  const double tx = wx.run(workload(x));
  const double tg = wg.run(workload(g));
  EXPECT_GT(tx, 2 * tg);  // the paper's ">2x slower" observation
}

}  // namespace
}  // namespace wfs::storage
