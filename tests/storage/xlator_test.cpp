#include "storage/gluster/xlator.hpp"

#include <gtest/gtest.h>

#include "storage/gluster/gluster_fs.hpp"
#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

using testing::MiniCluster;

/// Test translator that records traversal and forwards.
class RecordingXlator final : public Xlator {
 public:
  RecordingXlator(std::string tag, std::vector<std::string>& log)
      : tag_{std::move(tag)}, log_{&log} {}

  sim::Task<void> read(FileOp op) override {
    log_->push_back(tag_ + ":read:" + op.path);
    if (next_ != nullptr) {
      auto fwd = next_->read(std::move(op));
      co_await std::move(fwd);
    }
  }
  sim::Task<void> write(FileOp op) override {
    log_->push_back(tag_ + ":write:" + op.path);
    if (next_ != nullptr) {
      auto fwd = next_->write(std::move(op));
      co_await std::move(fwd);
    }
  }
  [[nodiscard]] std::string name() const override { return "test/" + tag_; }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
};

TEST(XlatorStack, CallsDescendTopToBottom) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Xlator>> layers;
  layers.push_back(std::make_unique<RecordingXlator>("top", log));
  layers.push_back(std::make_unique<RecordingXlator>("mid", log));
  layers.push_back(std::make_unique<RecordingXlator>("bot", log));
  XlatorStack stack{std::move(layers)};
  EXPECT_EQ(stack.depth(), 3u);
  w.run(stack.write(FileOp{0, "f", 1_MB}));
  w.run(stack.read(FileOp{0, "f", 1_MB}));
  EXPECT_EQ(log, (std::vector<std::string>{"top:write:f", "mid:write:f", "bot:write:f",
                                           "top:read:f", "mid:read:f", "bot:read:f"}));
}

TEST(XlatorStack, LayerCanServiceWithoutForwarding) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Xlator>> layers;
  layers.push_back(std::make_unique<IoCacheXlator>(w.sim, 64_MiB, GBps(1), metrics));
  layers.push_back(std::make_unique<RecordingXlator>("below", log));
  XlatorStack stack{std::move(layers)};
  // Write passes through (and caches); first read after a write is a hit
  // and must NOT reach the lower layer.
  w.run(stack.write(FileOp{0, "x", 1_MB}));
  w.run(stack.read(FileOp{0, "x", 1_MB}));
  EXPECT_EQ(log, (std::vector<std::string>{"below:write:x"}));
  EXPECT_EQ(metrics.cacheHits, 1u);
}

TEST(XlatorStack, IoCacheMissForwardsThenCaches) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Xlator>> layers;
  layers.push_back(std::make_unique<IoCacheXlator>(w.sim, 64_MiB, GBps(1), metrics));
  layers.push_back(std::make_unique<RecordingXlator>("below", log));
  XlatorStack stack{std::move(layers)};
  w.run(stack.read(FileOp{0, "cold", 1_MB}));
  w.run(stack.read(FileOp{0, "cold", 1_MB}));
  // One miss reaching the lower layer, then a hit served above.
  EXPECT_EQ(log, (std::vector<std::string>{"below:read:cold"}));
  EXPECT_EQ(metrics.cacheMisses, 1u);
  EXPECT_EQ(metrics.cacheHits, 1u);
}

TEST(XlatorStack, NamesIdentifyLayers) {
  MiniCluster w{{.nodes = 2, .zeroDiskOverheads = true}};
  GlusterFs fs{w.sim, w.fabric, w.nodes, GlusterMode::kDistribute};
  auto& stack = fs.clientStack(0);
  ASSERT_EQ(stack.depth(), 2u);
  EXPECT_EQ(stack.layer(0)->name(), "performance/io-cache");
  EXPECT_EQ(stack.layer(1)->name(), "cluster/dht");
  EXPECT_EQ(stack.layer(0)->next(), stack.layer(1));
  EXPECT_EQ(stack.layer(1)->next(), nullptr);
}

TEST(XlatorStack, OversizedFileBypassesIoCache) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  StorageMetrics metrics;
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Xlator>> layers;
  layers.push_back(std::make_unique<IoCacheXlator>(w.sim, 4_MiB, GBps(1), metrics));
  layers.push_back(std::make_unique<RecordingXlator>("below", log));
  XlatorStack stack{std::move(layers)};
  w.run(stack.read(FileOp{0, "huge", 100_MB}));
  w.run(stack.read(FileOp{0, "huge", 100_MB}));
  // Never fits the 4 MiB io-cache: both reads reach the lower layer.
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(metrics.cacheHits, 0u);
}

}  // namespace
}  // namespace wfs::storage
