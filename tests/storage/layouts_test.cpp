#include "storage/stack/layouts.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

namespace wfs::storage {
namespace {

TEST(DistributeLayout, PlacementIsStable) {
  DistributeLayout l{4};
  for (int i = 0; i < 100; ++i) {
    const std::string p = "file_" + std::to_string(i);
    const int a = l.place(p, 0);
    const int b = l.place(p, 3);  // creator is irrelevant
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, l.locate(p));
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

TEST(DistributeLayout, UsesAllBricks) {
  DistributeLayout l{4};
  std::set<int> used;
  for (int i = 0; i < 200; ++i) used.insert(l.locate("f" + std::to_string(i)));
  EXPECT_EQ(used.size(), 4u);
}

TEST(NufaLayout, PlacesOnCreator) {
  NufaLayout l{4};
  EXPECT_EQ(l.place("x", 2), 2);
  EXPECT_EQ(l.locate("x"), 2);
}

TEST(NufaLayout, PreStagedSpreadByHash) {
  NufaLayout l{4};
  std::set<int> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(l.place("in_" + std::to_string(i), -1));
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(NufaLayout, LocateUnknownThrows) {
  NufaLayout l{4};
  EXPECT_THROW((void)l.locate("never-placed"), std::out_of_range);
}

class LayoutBrickCount : public ::testing::TestWithParam<int> {};

TEST_P(LayoutBrickCount, DistributeBalancesWithinFactorTwo) {
  const int n = GetParam();
  DistributeLayout l{n};
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  const int files = 400 * n;
  for (int i = 0; i < files; ++i) {
    counts[static_cast<std::size_t>(l.locate("f" + std::to_string(i)))]++;
  }
  const int expect = files / n;
  for (int c : counts) {
    EXPECT_GT(c, expect / 2);
    EXPECT_LT(c, expect * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LayoutBrickCount, ::testing::Values(2, 3, 4, 8, 16));

}  // namespace
}  // namespace wfs::storage
