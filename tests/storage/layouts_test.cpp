#include "storage/stack/layouts.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "simcore/file_id.hpp"

namespace wfs::storage {
namespace {

TEST(DistributeLayout, PlacementIsStable) {
  sim::FileIdTable files;
  DistributeLayout l{4, files};
  for (int i = 0; i < 100; ++i) {
    const sim::FileId f = files.intern("file_" + std::to_string(i));
    const int a = l.place(f, 0);
    const int b = l.place(f, 3);  // creator is irrelevant
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, l.locate(f));
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

TEST(DistributeLayout, UsesAllBricks) {
  sim::FileIdTable files;
  DistributeLayout l{4, files};
  std::set<int> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(l.locate(files.intern("f" + std::to_string(i))));
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(DistributeLayout, PlacementMatchesPathHash) {
  // DHT placement must keep using the path's FNV-1a hash (cached in the
  // intern table), so interning cannot move any file to a different brick.
  sim::FileIdTable files;
  DistributeLayout l{7, files};
  for (int i = 0; i < 50; ++i) {
    const std::string name = "f" + std::to_string(i);
    const sim::FileId f = files.intern(name);
    EXPECT_EQ(l.locate(f), static_cast<int>(files.hash(f) % 7u));
  }
}

TEST(NufaLayout, PlacesOnCreator) {
  sim::FileIdTable files;
  NufaLayout l{4, files};
  const sim::FileId x = files.intern("x");
  EXPECT_EQ(l.place(x, 2), 2);
  EXPECT_EQ(l.locate(x), 2);
}

TEST(NufaLayout, PreStagedSpreadByHash) {
  sim::FileIdTable files;
  NufaLayout l{4, files};
  std::set<int> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(l.place(files.intern("in_" + std::to_string(i)), -1));
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(NufaLayout, LocateUnknownThrows) {
  sim::FileIdTable files;
  NufaLayout l{4, files};
  EXPECT_THROW((void)l.locate(files.intern("never-placed")), std::out_of_range);
  EXPECT_THROW((void)l.locate(sim::FileId{}), std::out_of_range);
}

class LayoutBrickCount : public ::testing::TestWithParam<int> {};

TEST_P(LayoutBrickCount, DistributeBalancesWithinFactorTwo) {
  const int n = GetParam();
  sim::FileIdTable files;
  DistributeLayout l{n, files};
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  const int total = 400 * n;
  for (int i = 0; i < total; ++i) {
    counts[static_cast<std::size_t>(l.locate(files.intern("f" + std::to_string(i))))]++;
  }
  const int expect = total / n;
  for (int c : counts) {
    EXPECT_GT(c, expect / 2);
    EXPECT_LT(c, expect * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LayoutBrickCount, ::testing::Values(2, 3, 4, 8, 16));

}  // namespace
}  // namespace wfs::storage
