#include "storage/s3/object_store.hpp"

#include "storage/s3/s3_fs.hpp"

#include <gtest/gtest.h>

#include "testing/cluster_fixture.hpp"

namespace wfs::storage {
namespace {

using testing::MiniCluster;

TEST(ObjectStore, RequestLatencyFloorsSmallGets) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  ObjectStore store{w.net, ObjectStore::Config{}};
  const double t = w.run(store.get(w.nodes[0].nic, 1_KB));
  EXPECT_GE(t, 0.060);
  EXPECT_LT(t, 0.075);
  EXPECT_EQ(store.getCount(), 1u);
}

TEST(ObjectStore, PerConnectionCeilingLimitsOneTransfer) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  ObjectStore store{w.net, ObjectStore::Config{}};
  // 50 MB at the 25 MB/s connection ceiling, though the NIC could do 100.
  const double t = w.run(store.get(w.nodes[0].nic, 50_MB));
  EXPECT_NEAR(t, 2.06, 0.05);
}

TEST(ObjectStore, ParallelConnectionsAggregateUpToNic) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  ObjectStore store{w.net, ObjectStore::Config{}};
  // Four parallel GETs of 25 MB each: 4 x 25 MB/s = the 100 MB/s NIC, so
  // all finish in ~1.06 s instead of 4 sequential seconds.
  std::vector<sim::Task<void>> gets;
  for (int i = 0; i < 4; ++i) gets.push_back(store.get(w.nodes[0].nic, 25_MB));
  const double t = w.run(sim::allOf(w.sim, std::move(gets)));
  EXPECT_NEAR(t, 1.06, 0.05);
  EXPECT_EQ(store.getCount(), 4u);
}

TEST(ObjectStore, PutCountsAndBytesStored) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  ObjectStore store{w.net, ObjectStore::Config{}};
  w.run(store.put(w.nodes[0].nic, 10_MB));
  w.run(store.put(w.nodes[0].nic, 5_MB));
  EXPECT_EQ(store.putCount(), 2u);
  EXPECT_EQ(store.bytesStored(), 15_MB);
}

TEST(ObjectStore, ZeroByteRequestStillCostsLatency) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  ObjectStore store{w.net, ObjectStore::Config{}};
  const double t = w.run(store.get(w.nodes[0].nic, 0));
  EXPECT_NEAR(t, 0.060, 1e-3);
}

TEST(S3Client, CacheEvictionForcesRefetch) {
  MiniCluster w{{.nodes = 1, .zeroDiskOverheads = true}};
  S3Fs::Config cfg;
  cfg.clientCacheBytes = 30_MB;  // tiny client cache
  S3Fs fs{w.sim, w.net, w.nodes, cfg};
  fs.preload("a", 20_MB);
  fs.preload("b", 20_MB);
  w.run(fs.read(0, "a"));
  w.run(fs.read(0, "b"));  // evicts a
  w.run(fs.read(0, "a"));  // must GET again
  EXPECT_EQ(fs.objectStore().getCount(), 3u);
}

}  // namespace
}  // namespace wfs::storage
