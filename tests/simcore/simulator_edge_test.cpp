#include <gtest/gtest.h>

#include "simcore/signal.hpp"
#include "simcore/simulator.hpp"

namespace wfs::sim {
namespace {

TEST(SimulatorEdge, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int ran = 0;
  sim.schedule(Duration::seconds(5), [&] { ++ran; });
  sim.schedule(Duration::seconds(10), [&] { ++ran; });
  sim.schedule(Duration::seconds(15), [&] { ++ran; });
  const auto n = sim.runUntil(SimTime::origin() + Duration::seconds(10));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), SimTime::origin() + Duration::seconds(10));
  sim.run();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorEdge, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.runUntil(SimTime::origin() + Duration::seconds(42));
  EXPECT_EQ(sim.now(), SimTime::origin() + Duration::seconds(42));
}

TEST(SimulatorEdge, CancelledTimerNeverFires) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule(Duration::seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorEdge, NestedSpawnFromRunningProcess) {
  Simulator sim;
  std::vector<int> order;
  sim.spawn([](Simulator& s, std::vector<int>& log) -> Task<void> {
    log.push_back(1);
    s.spawn([](Simulator& s2, std::vector<int>& l2) -> Task<void> {
      l2.push_back(2);
      co_await s2.delay(Duration::seconds(1));
      l2.push_back(4);
    }(s, log));
    co_await s.delay(Duration::millis(500));
    log.push_back(3);
  }(sim, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

TEST(SimulatorEdge, ManyProcessesAllReclaimed) {
  Simulator sim;
  for (int i = 0; i < 2000; ++i) {
    sim.spawn([](Simulator& s, int delayMs) -> Task<void> {
      co_await s.delay(Duration::millis(delayMs % 50));
    }(sim, i));
  }
  EXPECT_EQ(sim.liveProcesses(), 2000u);
  sim.run();
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

TEST(SimulatorEdge, OneShotFireIsIdempotent) {
  Simulator sim;
  OneShotEvent ev{sim};
  int wakeups = 0;
  sim.spawn([](OneShotEvent& e, int& n) -> Task<void> {
    co_await e.wait();
    ++n;
  }(ev, wakeups));
  sim.spawn([](Simulator& s, OneShotEvent& e) -> Task<void> {
    co_await s.delay(Duration::seconds(1));
    e.fire();
    e.fire();
    e.fire();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(wakeups, 1);
}

TEST(SimulatorEdge, ZeroDelayPreservesFifoAmongSpawns) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.spawn([](Simulator& s, std::vector<int>& log, int id) -> Task<void> {
      co_await s.yield();
      log.push_back(id);
    }(sim, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace wfs::sim
