// Arena allocator tests: exact-size recycling, wholesale reset, and the
// O(peak-live-state) reservation bound that makes per-world arenas safe for
// long sweep runs (memory tracks the largest instant, not the event count).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "simcore/arena.hpp"
#include "simcore/simulator.hpp"
#include "simcore/task.hpp"

namespace wfs::sim {
namespace {

TEST(Arena, ServesAlignedBlocksAndCountsThem) {
  Arena a;
  void* p = a.allocate(24);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  // Writable for the full request.
  std::memset(p, 0xab, 24);
  EXPECT_GE(a.bytesAllocated(), 24u);
  EXPECT_GT(a.bytesReserved(), 0u);
  EXPECT_EQ(a.chunkCount(), 1u);
}

TEST(Arena, ExactSizeRecyclingReusesTheSameBlock) {
  Arena a;
  void* first = a.allocate(64);
  a.deallocate(first, 64);
  void* second = a.allocate(64);
  EXPECT_EQ(first, second) << "same-size churn must recycle, not bump";
  EXPECT_EQ(a.recycleHits(), 1u);
  // A different size class must not steal the freed block.
  a.deallocate(second, 64);
  void* other = a.allocate(128);
  EXPECT_NE(other, second);
}

TEST(Arena, SteadyStateChurnReservesPeakNotTotal) {
  Arena a;
  // Warm up: reach steady state with kLive live blocks.
  constexpr int kLive = 32;
  constexpr std::size_t kSize = 256;
  std::vector<void*> live;
  for (int i = 0; i < kLive; ++i) live.push_back(a.allocate(kSize));
  const std::uint64_t reservedAtPeak = a.bytesReserved();
  const std::size_t chunksAtPeak = a.chunkCount();
  // Churn far more blocks than the peak: each round frees and re-allocates
  // every block. Reservation must not move — recycling serves everything.
  for (int round = 0; round < 1000; ++round) {
    for (void*& p : live) {
      a.deallocate(p, kSize);
      p = a.allocate(kSize);
    }
  }
  EXPECT_EQ(a.bytesReserved(), reservedAtPeak);
  EXPECT_EQ(a.chunkCount(), chunksAtPeak);
  EXPECT_GE(a.recycleHits(), 1000u * kLive);
  EXPECT_GE(a.bytesAllocated(), 1000u * kLive * kSize);
}

TEST(Arena, ResetKeepsChunksSoRepeatRunsDoNotReserveAgain) {
  Arena a;
  for (int i = 0; i < 100; ++i) static_cast<void>(a.allocate(512));
  const std::uint64_t reserved = a.bytesReserved();
  const std::size_t chunks = a.chunkCount();
  a.reset();
  // Same-shape second run: everything comes out of the retained chunks.
  for (int i = 0; i < 100; ++i) static_cast<void>(a.allocate(512));
  EXPECT_EQ(a.bytesReserved(), reserved);
  EXPECT_EQ(a.chunkCount(), chunks);
}

TEST(Arena, ResetInvalidatesFreeListsWithoutLosingLargeBlocks) {
  Arena a;
  // A block past the bucket limit goes on the large list.
  void* big = a.allocate(64 * 1024);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 64 * 1024);
  const std::uint64_t reserved = a.bytesReserved();
  a.reset();
  // The large block is retained and reused for an equal-or-smaller request.
  void* again = a.allocate(64 * 1024);
  EXPECT_EQ(a.bytesReserved(), reserved);
  std::memset(again, 0, 64 * 1024);
}

TEST(Arena, LargeBlockChurnRecyclesWithoutNewReservation) {
  Arena a;
  void* big = a.allocate(32 * 1024);
  const std::uint64_t reserved = a.bytesReserved();
  for (int i = 0; i < 50; ++i) {
    a.deallocate(big, 32 * 1024);
    big = a.allocate(32 * 1024);
  }
  EXPECT_EQ(a.bytesReserved(), reserved);
}

TEST(ArenaPool, TypedPoolRecyclesNodes) {
  struct Node {
    int v;
    explicit Node(int x) : v{x} {}
  };
  Arena a;
  Pool<Node> pool{a};
  Node* n1 = pool.create(7);
  EXPECT_EQ(n1->v, 7);
  pool.destroy(n1);
  Node* n2 = pool.create(9);
  EXPECT_EQ(static_cast<void*>(n1), static_cast<void*>(n2));
  EXPECT_EQ(n2->v, 9);
  pool.destroy(n2);
}

TEST(ArenaAllocatorTest, VectorGrowthAndNullArenaFallback) {
  Arena a;
  {
    std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>{&a}};
    for (int i = 0; i < 10000; ++i) v.push_back(i);
    EXPECT_EQ(v[9999], 9999);
    EXPECT_GT(a.bytesAllocated(), 10000u * sizeof(int));
  }
  // Null-arena allocator must fall back to the system allocator.
  std::vector<int, ArenaAllocator<int>> w;
  for (int i = 0; i < 100; ++i) w.push_back(i);
  EXPECT_EQ(w.back(), 99);
}

Task<void> tickOnce(Simulator& s) { co_await s.delay(Duration::millis(1)); }

Task<void> spawner(Simulator& s, int rounds, int width) {
  // Children are created inside run() dispatch, so their frames come out of
  // the simulator's arena (frames built outside a run use the system
  // allocator — the FrameArenaScope is only installed for the dispatch loop).
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < width; ++i) s.spawn(tickOnce(s));
    co_await s.delay(Duration::millis(2));
  }
}

TEST(ArenaFrames, SimulatorRunRecyclesCoroutineFrames) {
  // Spawning the same coroutine shape repeatedly inside run() must reach a
  // steady state where frames recycle through the simulator's arena instead
  // of growing its reservation.
  Simulator sim;
  sim.spawn(spawner(sim, 5, 8));
  sim.run();
  const std::uint64_t reserved = sim.arena().bytesReserved();
  ASSERT_GT(reserved, 0u);
  sim.spawn(spawner(sim, 200, 8));
  sim.run();
  EXPECT_EQ(sim.arena().bytesReserved(), reserved)
      << "steady-state spawn churn must not grow the arena";
  EXPECT_GT(sim.arena().recycleHits(), 0u);
}

}  // namespace
}  // namespace wfs::sim
