#include "simcore/task.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "simcore/signal.hpp"
#include "simcore/simulator.hpp"

namespace wfs::sim {
namespace {

Task<int> answer() { co_return 42; }

Task<int> addOne(Task<int> inner) {
  const int v = co_await std::move(inner);
  co_return v + 1;
}

TEST(Task, SpawnedProcessRuns) {
  Simulator sim;
  bool ran = false;
  sim.spawn([](bool& flag) -> Task<void> {
    flag = true;
    co_return;
  }(ran));
  EXPECT_FALSE(ran) << "spawn must be deferred, not immediate";
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.liveProcesses(), 0u);
}

TEST(Task, AwaitPropagatesValue) {
  Simulator sim;
  int got = 0;
  sim.spawn([](int& out) -> Task<void> {
    out = co_await addOne(answer());
  }(got));
  sim.run();
  EXPECT_EQ(got, 43);
}

TEST(Task, DelayAdvancesClock) {
  Simulator sim;
  SimTime finish;
  sim.spawn([](Simulator& s, SimTime& out) -> Task<void> {
    co_await s.delay(Duration::seconds(5));
    co_await s.delay(Duration::seconds(7));
    out = s.now();
  }(sim, finish));
  sim.run();
  EXPECT_EQ(finish, SimTime::origin() + Duration::seconds(12));
}

TEST(Task, ConcurrentProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> log;
  auto proc = [](Simulator& s, std::vector<std::string>& l, std::string id,
                 Duration step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(step);
      l.push_back(id + std::to_string(i));
    }
  };
  sim.spawn(proc(sim, log, "a", Duration::seconds(2)));
  sim.spawn(proc(sim, log, "b", Duration::seconds(3)));
  sim.run();
  // a fires at t=2,4,6; b at t=3,6,9. At the t=6 tie, b1 was scheduled at
  // t=3 (earlier sequence number) than a2 (scheduled at t=4), so FIFO puts
  // b1 first.
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  auto thrower = []() -> Task<void> {
    throw std::runtime_error("boom");
    co_return;
  };
  sim.spawn([](bool& c, Task<void> t) -> Task<void> {
    try {
      co_await std::move(t);
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(caught, thrower()));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Task, UnstartedTaskIsDestroyedWithoutLeak) {
  // ASAN (when enabled) verifies the frame is freed; here we just exercise
  // the path.
  auto t = answer();
  EXPECT_TRUE(t.valid());
}

TEST(Task, SuspendedProcessIsReclaimedAtSimulatorDestruction) {
  bool started = false;
  {
    Simulator sim;
    sim.spawn([](Simulator& s, bool& f) -> Task<void> {
      f = true;
      co_await s.delay(Duration::hours(999));
    }(sim, started));
    sim.runUntil(SimTime::origin() + Duration::seconds(1));
    EXPECT_TRUE(started);
    EXPECT_EQ(sim.liveProcesses(), 1u);
  }  // ~Simulator destroys the suspended frame tree
}

TEST(OneShot, WaitersReleasedOnFire) {
  Simulator sim;
  OneShotEvent ev{sim};
  int released = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](OneShotEvent& e, int& n) -> Task<void> {
      co_await e.wait();
      ++n;
    }(ev, released));
  }
  sim.spawn([](Simulator& s, OneShotEvent& e) -> Task<void> {
    co_await s.delay(Duration::seconds(1));
    e.fire();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(released, 3);
}

TEST(OneShot, WaitAfterFireCompletesImmediately) {
  Simulator sim;
  OneShotEvent ev{sim};
  ev.fire();
  bool done = false;
  sim.spawn([](OneShotEvent& e, bool& d) -> Task<void> {
    co_await e.wait();
    d = true;
  }(ev, done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(AllOf, CompletesWhenAllChildrenComplete) {
  Simulator sim;
  SimTime finish;
  auto sleeper = [](Simulator& s, Duration d) -> Task<void> { co_await s.delay(d); };
  std::vector<Task<void>> kids;
  kids.push_back(sleeper(sim, Duration::seconds(1)));
  kids.push_back(sleeper(sim, Duration::seconds(9)));
  kids.push_back(sleeper(sim, Duration::seconds(4)));
  sim.spawn([](Simulator& s, std::vector<Task<void>> k, SimTime& out) -> Task<void> {
    co_await allOf(s, std::move(k));
    out = s.now();
  }(sim, std::move(kids), finish));
  sim.run();
  EXPECT_EQ(finish, SimTime::origin() + Duration::seconds(9));
}

TEST(AllOf, EmptyVectorCompletesImmediately) {
  Simulator sim;
  bool done = false;
  sim.spawn([](Simulator& s, bool& d) -> Task<void> {
    co_await allOf(s, {});
    d = true;
  }(sim, done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Broadcast, WakesOnlyCurrentWaiters) {
  Simulator sim;
  Broadcast sig{sim};
  int wakeups = 0;
  sim.spawn([](Broadcast& s, int& n) -> Task<void> {
    co_await s.wait();
    ++n;
    co_await s.wait();
    ++n;
  }(sig, wakeups));
  sim.spawn([](Simulator& s, Broadcast& b) -> Task<void> {
    co_await s.delay(Duration::seconds(1));
    b.fire();
    co_await s.delay(Duration::seconds(1));
    b.fire();
  }(sim, sig));
  sim.run();
  EXPECT_EQ(wakeups, 2);
}

}  // namespace
}  // namespace wfs::sim
