#include "simcore/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wfs::sim {
namespace {

SimTime at(std::int64_t s) { return SimTime::origin() + Duration::seconds(s); }

TEST(EventQueue, RunsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3), [&] { order.push_back(3); });
  q.schedule(at(1), [&] { order.push_back(1); });
  q.schedule(at(2), [&] { order.push_back(2); });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.runNext();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelDropsEvent) {
  EventQueue q;
  int ran = 0;
  auto id = q.schedule(at(1), [&] { ++ran; });
  q.schedule(at(2), [&] { ++ran; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.runNext();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CancelTwiceIsIdempotent) {
  EventQueue q;
  auto id = q.schedule(at(1), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  int ran = 0;
  q.schedule(at(1), [&] {
    q.schedule(at(2), [&] { ++ran; });
  });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto id = q.schedule(at(1), [] {});
  q.schedule(at(7), [] {});
  q.cancel(id);
  EXPECT_EQ(q.nextTime(), at(7));
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(at(9), [] {});
  EXPECT_EQ(q.runNext(), at(9));
}

}  // namespace
}  // namespace wfs::sim
