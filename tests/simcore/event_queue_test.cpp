#include "simcore/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wfs::sim {
namespace {

SimTime at(std::int64_t s) { return SimTime::origin() + Duration::seconds(s); }

TEST(EventQueue, RunsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3), [&] { order.push_back(3); });
  q.schedule(at(1), [&] { order.push_back(1); });
  q.schedule(at(2), [&] { order.push_back(2); });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.runNext();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelDropsEvent) {
  EventQueue q;
  int ran = 0;
  auto id = q.schedule(at(1), [&] { ++ran; });
  q.schedule(at(2), [&] { ++ran; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.runNext();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CancelTwiceIsIdempotent) {
  EventQueue q;
  auto id = q.schedule(at(1), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  int ran = 0;
  q.schedule(at(1), [&] {
    q.schedule(at(2), [&] { ++ran; });
  });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto id = q.schedule(at(1), [] {});
  q.schedule(at(7), [] {});
  q.cancel(id);
  EXPECT_EQ(q.nextTime(), at(7));
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(at(9), [] {});
  EXPECT_EQ(q.runNext(), at(9));
}

TEST(EventQueue, FifoSurvivesInterleavedCancellation) {
  // Cancelling every other simultaneous event must not disturb the FIFO
  // order of the survivors (heap repairs swap entries around).
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.schedule(at(5), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 64; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.runNext();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], 2 * i + 1);
}

TEST(EventQueue, StaleIdAfterSlotReuseIsIgnored) {
  // Run an event, let its slot be recycled by a new event, then cancel via
  // the stale handle: the generation tag must protect the new occupant.
  EventQueue q;
  int ran = 0;
  const EventId stale = q.schedule(at(1), [&] { ++ran; });
  q.runNext();
  q.schedule(at(2), [&] { ++ran; });  // reuses the freed slot
  q.cancel(stale);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.runNext();
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, RescheduleStormKeepsTimestampOrder) {
  // Timer-heavy components cancel + re-arm constantly; emulate that and
  // check the surviving deadline is honoured exactly.
  EventQueue q;
  std::vector<std::int64_t> fired;
  EventId armed{};
  for (std::int64_t round = 0; round < 1000; ++round) {
    if (round != 0) q.cancel(armed);
    armed = q.schedule(at(2000 - round), [&fired, round] { fired.push_back(round); });
  }
  q.schedule(at(500), [&fired] { fired.push_back(-1); });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(fired, (std::vector<std::int64_t>{-1, 999}));
}

TEST(EventQueue, MemoryIsBoundedByLiveEventsNotTotalScheduled) {
  // Regression for O(live) memory: a million schedule/run cycles with at
  // most 4 events outstanding must not grow the slot table past the peak.
  EventQueue q;
  for (int i = 0; i < 1'000'000; ++i) {
    q.schedule(at(i), [] {});
    if (q.size() >= 4) q.runNext();
  }
  while (!q.empty()) q.runNext();
  EXPECT_LE(q.slotCapacity(), 8u);
}

TEST(EventQueue, CancelStormReleasesSlots) {
  // Cancellation must recycle slots eagerly, not leave tombstones behind.
  EventQueue q;
  for (int i = 0; i < 100'000; ++i) {
    q.cancel(q.schedule(at(1), [] {}));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_LE(q.slotCapacity(), 2u);
}

}  // namespace
}  // namespace wfs::sim
