#include "simcore/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "simcore/simulator.hpp"

namespace wfs::sim {
namespace {

Task<void> chatty(Simulator& sim, const std::string& tag, int lines) {
  for (int i = 0; i < lines; ++i) {
    co_await sim.delay(Duration::fromSeconds(1.0));
    WFS_TRACE(TraceCat::kApp, sim, tag + " line " + std::to_string(i));
  }
}

/// Runs one isolated simulator, capturing its trace into `out`.
void runWorld(const std::string& tag, int lines, std::vector<std::string>& out) {
  Simulator sim;
  sim.trace().enable(true);
  sim.trace().setSink([&out](std::string_view line) { out.emplace_back(line); });
  sim.spawn(chatty(sim, tag, lines));
  sim.run();
}

TEST(TraceTest, DisabledByDefaultAndMacroSkipsLog) {
  Simulator sim;
  EXPECT_FALSE(sim.trace().enabled());
  std::vector<std::string> lines;
  sim.trace().setSink([&lines](std::string_view l) { lines.emplace_back(l); });
  sim.spawn(chatty(sim, "quiet", 3));
  sim.run();
  EXPECT_TRUE(lines.empty());
}

TEST(TraceTest, SinkReceivesFormattedLines) {
  std::vector<std::string> lines;
  runWorld("w", 2, lines);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("app"), std::string::npos);
  EXPECT_NE(lines[0].find("w line 0"), std::string::npos);
  EXPECT_NE(lines[1].find("w line 1"), std::string::npos);
  // Simulated timestamp, not wall clock: 1.0s then 2.0s.
  EXPECT_NE(lines[0].find("1.000000"), std::string::npos);
  EXPECT_NE(lines[1].find("2.000000"), std::string::npos);
}

// Regression: Trace used to be a process-global singleton, so concurrent
// simulators shared one sink and their output interleaved (and raced).
// Each Simulator now owns its Trace; per-world capture must be exact.
TEST(TraceTest, ConcurrentSimulatorsDoNotInterleave) {
  constexpr int kWorlds = 4;
  constexpr int kLines = 200;
  std::vector<std::vector<std::string>> buffers(kWorlds);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorlds; ++w) {
    threads.emplace_back([w, &buffers] {
      runWorld("world" + std::to_string(w), kLines, buffers[w]);
    });
  }
  for (auto& t : threads) t.join();

  for (int w = 0; w < kWorlds; ++w) {
    // Serial rerun of the same world gives the expected byte-exact log.
    std::vector<std::string> expected;
    runWorld("world" + std::to_string(w), kLines, expected);
    EXPECT_EQ(buffers[w], expected) << "world " << w;
    for (const std::string& line : buffers[w]) {
      EXPECT_NE(line.find("world" + std::to_string(w) + " "), std::string::npos)
          << "foreign line in world " << w << ": " << line;
    }
  }
}

}  // namespace
}  // namespace wfs::sim
