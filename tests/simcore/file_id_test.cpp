#include "simcore/file_id.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/base/path.hpp"

namespace wfs::sim {
namespace {

TEST(FileId, DefaultIsInvalid) {
  FileId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FileId{});
}

TEST(FileIdTable, InternIsIdempotent) {
  FileIdTable t;
  const FileId a = t.intern("lfn/region_07.fits");
  const FileId b = t.intern("lfn/region_07.fits");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FileIdTable, IdsAreDenseInFirstSightOrder) {
  FileIdTable t;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const FileId id = t.intern("f" + std::to_string(i));
    EXPECT_EQ(id.index(), i);
  }
  EXPECT_EQ(t.size(), 100u);
}

TEST(FileIdTable, NameRoundTrips) {
  FileIdTable t;
  std::vector<FileId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(t.intern("montage/p" + std::to_string(i) + ".img"));
  }
  // Interning more names must not invalidate earlier name() references
  // (the table is deque-backed for reference stability).
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(t.name(ids[static_cast<std::size_t>(i)]),
              "montage/p" + std::to_string(i) + ".img");
  }
}

TEST(FileIdTable, FindDoesNotIntern) {
  FileIdTable t;
  EXPECT_FALSE(t.find("never-seen").valid());
  EXPECT_EQ(t.size(), 0u);
  const FileId id = t.intern("seen");
  EXPECT_EQ(t.find("seen"), id);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FileIdTable, CachedHashMatchesPathHash) {
  // DHT placement keys on the cached hash; it must stay bit-identical to
  // storage::pathHash or interning would silently move files across bricks.
  FileIdTable t;
  const std::vector<std::string> names = {
      "",  "x", "out.dat", "a/very/long/logical/file/name/with/segments.hdf5",
      "f0", "f1", "2mass-atlas-990214n-j1440256.fits"};
  for (const std::string& n : names) {
    EXPECT_EQ(t.hash(t.intern(n)), storage::pathHash(n)) << n;
  }
}

TEST(FileIdTable, StringViewLookupSurvivesGrowth) {
  FileIdTable t;
  const FileId first = t.intern("stable");
  for (int i = 0; i < 4096; ++i) t.intern("churn" + std::to_string(i));
  EXPECT_EQ(t.find("stable"), first);
  EXPECT_EQ(t.name(first), "stable");
}

}  // namespace
}  // namespace wfs::sim
