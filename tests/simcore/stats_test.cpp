#include "simcore/stats.hpp"

#include <gtest/gtest.h>

#include "simcore/rng.hpp"

namespace wfs::sim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(OnlineStats, KnownSample) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MatchesTwoPassOnRandomData) {
  Rng rng{5};
  OnlineStats s;
  std::vector<double> vals;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.normal(100.0, 15.0);
    vals.push_back(v);
    s.add(v);
  }
  double mean = 0;
  for (double v : vals) mean += v;
  mean /= static_cast<double>(vals.size());
  double var = 0;
  for (double v : vals) var += (v - mean) * (v - mean);
  var /= static_cast<double>(vals.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(Percentiles, ExactOrderStatistics) {
  Percentiles p;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(p.median(), 30.0);
  EXPECT_DOUBLE_EQ(p.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(p.percentile(12.5), 15.0);  // interpolated
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(1.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.median(), 2.0);
  p.add(100.0);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
}

}  // namespace
}  // namespace wfs::sim
