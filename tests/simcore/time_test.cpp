#include "simcore/time.hpp"

#include <gtest/gtest.h>

#include "simcore/units.hpp"

namespace wfs::sim {
namespace {

TEST(Duration, FactoryUnitsCompose) {
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(1500).ns(), Duration::nanos(1'500'000'000).ns());
  EXPECT_EQ(Duration::minutes(2), Duration::seconds(120));
  EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
}

TEST(Duration, ArithmeticAndComparison) {
  const auto a = Duration::seconds(3);
  const auto b = Duration::millis(500);
  EXPECT_EQ((a + b).ns(), 3'500'000'000);
  EXPECT_EQ((a - b).ns(), 2'500'000'000);
  EXPECT_LT(b, a);
  EXPECT_EQ(a * 2, Duration::seconds(6));
}

TEST(Duration, FromSecondsRoundsUpSoPositiveNeverZero) {
  EXPECT_EQ(Duration::fromSeconds(1.0), Duration::seconds(1));
  EXPECT_GT(Duration::fromSeconds(1e-12).ns(), 0);
  EXPECT_EQ(Duration::fromSeconds(0.0), Duration::zero());
}

TEST(Duration, AsSecondsRoundTrips) {
  EXPECT_DOUBLE_EQ(Duration::millis(250).asSeconds(), 0.25);
}

TEST(SimTime, OffsetAndDifference) {
  const auto t0 = SimTime::origin();
  const auto t1 = t0 + Duration::seconds(10);
  EXPECT_EQ(t1 - t0, Duration::seconds(10));
  EXPECT_LT(t0, t1);
  EXPECT_EQ(SimTime::fromNanos(42).ns(), 42);
}

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KB, 1000);
  EXPECT_EQ(1_MB, 1'000'000);
  EXPECT_EQ(4_GB, 4'000'000'000);
  EXPECT_EQ(1_KiB, 1024);
  EXPECT_EQ(1_MiB, 1048576);
  EXPECT_EQ(2_GiB, 2147483648LL);
}

TEST(Units, RateHelpers) {
  EXPECT_DOUBLE_EQ(MBps(100), 1e8);
  EXPECT_DOUBLE_EQ(Gbps(1), 1.25e8);
}

}  // namespace
}  // namespace wfs::sim
