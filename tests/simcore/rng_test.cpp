#include "simcore/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace wfs::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.nextU64() == b.nextU64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng a{7};
  Rng child = a.fork();
  const auto c0 = child.nextU64();
  Rng b{7};
  Rng child2 = b.fork();
  EXPECT_EQ(child2.nextU64(), c0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r{42};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r{42};
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    lo |= (v == 3);
    hi |= (v == 5);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng r{42};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng r{42};
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, TruncatedNormalRespectsFloor) {
  Rng r{42};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.truncatedNormal(1.0, 2.0, 0.25), 0.25);
  }
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng r{42};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.boundedPareto(1.0, 100.0, 1.2);
    EXPECT_GE(v, 1.0 - 1e-9);
    EXPECT_LE(v, 100.0 + 1e-9);
  }
}

}  // namespace
}  // namespace wfs::sim
