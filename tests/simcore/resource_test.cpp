#include "simcore/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wfs::sim {
namespace {

TEST(Resource, CapacityLimitsConcurrency) {
  Simulator sim;
  Resource cores{sim, 2, "cores"};
  int concurrent = 0;
  int peak = 0;
  auto worker = [](Simulator& s, Resource& r, int& cur, int& pk) -> Task<void> {
    auto lease = co_await r.scoped(1);
    ++cur;
    pk = std::max(pk, cur);
    co_await s.delay(Duration::seconds(1));
    --cur;
  };
  for (int i = 0; i < 6; ++i) sim.spawn(worker(sim, cores, concurrent, peak));
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(cores.available(), 2);
}

TEST(Resource, FifoOrdering) {
  Simulator sim;
  Resource r{sim, 1};
  std::vector<int> order;
  auto worker = [](Simulator& s, Resource& res, std::vector<int>& ord, int id) -> Task<void> {
    auto lease = co_await res.scoped(1);
    ord.push_back(id);
    co_await s.delay(Duration::seconds(1));
  };
  for (int i = 0; i < 5; ++i) sim.spawn(worker(sim, r, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, LargeRequestNotStarvedBySmallOnes) {
  Simulator sim;
  Resource mem{sim, 4, "mem"};
  std::vector<std::string> order;
  auto big = [](Simulator& s, Resource& r, std::vector<std::string>& ord) -> Task<void> {
    co_await s.delay(Duration::millis(10));
    auto lease = co_await r.scoped(4);
    ord.push_back("big");
    co_await s.delay(Duration::seconds(1));
  };
  auto small = [](Simulator& s, Resource& r, std::vector<std::string>& ord,
                  Duration start) -> Task<void> {
    co_await s.delay(start);
    auto lease = co_await r.scoped(1);
    ord.push_back("small");
    co_await s.delay(Duration::seconds(1));
  };
  sim.spawn(small(sim, mem, order, Duration::millis(0)));
  sim.spawn(big(sim, mem, order));
  // These arrive after the big request and would fit in the 3 free units,
  // but strict FIFO makes them wait behind it.
  sim.spawn(small(sim, mem, order, Duration::millis(20)));
  sim.spawn(small(sim, mem, order, Duration::millis(30)));
  sim.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "small");
  EXPECT_EQ(order[1], "big");
}

TEST(Resource, TryAcquireRespectsQueue) {
  Simulator sim;
  Resource r{sim, 2};
  EXPECT_TRUE(r.tryAcquire(2));
  EXPECT_FALSE(r.tryAcquire(1));
  // Park a waiter.
  sim.spawn([](Resource& res) -> Task<void> {
    co_await res.acquire(1);
  }(r));
  sim.runUntil(SimTime::origin());
  r.release(2);
  // One unit was granted to the queued waiter; one is free, and with an
  // empty queue tryAcquire succeeds again.
  sim.run();
  EXPECT_TRUE(r.tryAcquire(1));
  EXPECT_EQ(r.available(), 0);
}

TEST(Resource, LeaseMoveTransfersOwnership) {
  Simulator sim;
  Resource r{sim, 1};
  sim.spawn([](Simulator& s, Resource& res) -> Task<void> {
    Lease a = co_await res.scoped(1);
    Lease b = std::move(a);
    EXPECT_FALSE(a.held());
    EXPECT_TRUE(b.held());
    co_await s.delay(Duration::seconds(1));
  }(sim, r));
  sim.run();
  EXPECT_EQ(r.available(), 1);
}

TEST(Resource, ManualReleaseIdempotentViaLease) {
  Simulator sim;
  Resource r{sim, 3};
  sim.spawn([](Resource& res) -> Task<void> {
    Lease l = co_await res.scoped(2);
    l.release();
    l.release();  // second release is a no-op
    EXPECT_EQ(res.available(), 3);
    co_return;
  }(r));
  sim.run();
  EXPECT_EQ(r.available(), 3);
}

}  // namespace
}  // namespace wfs::sim
