#include "analysis/export.hpp"

#include <gtest/gtest.h>

namespace wfs::analysis {
namespace {

wf::Dag tinyDag() {
  wf::Dag d;
  wf::JobSpec a;
  a.name = "prep";
  a.transformation = "prep";
  a.cpuSeconds = 2.5;
  a.outputs = {{"f", 1}};
  d.addJob(std::move(a));
  wf::JobSpec b;
  b.name = "use \"quoted\"";
  b.transformation = "use";
  b.inputs = {{"f", 1}};
  d.addJob(std::move(b));
  d.connectByFiles({});
  return d;
}

TEST(Export, DotContainsNodesAndEdges) {
  const auto dot = toDot(tinyDag(), "mini");
  EXPECT_NE(dot.find("digraph \"mini\""), std::string::npos);
  EXPECT_NE(dot.find("j0 [label=\"prep\\n2.5s cpu\"]"), std::string::npos);
  EXPECT_NE(dot.find("j0 -> j1;"), std::string::npos);
  // Quotes in names are escaped.
  EXPECT_NE(dot.find("use \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(dot.find("j1 -> j0"), std::string::npos);
}

prof::WfProf sampleProf() {
  prof::WfProf p;
  prof::TaskTrace t1;
  t1.jobId = 0;
  t1.transformation = "a";
  t1.node = 1;
  t1.startSeconds = 5;
  t1.endSeconds = 9;
  t1.cpuSeconds = 3;
  t1.ioSeconds = 1;
  t1.bytesRead = 100;
  t1.bytesWritten = 50;
  t1.peakMemory = 1024;
  prof::TaskTrace t2;
  t2.jobId = 1;
  t2.transformation = "b";
  t2.node = 0;
  t2.startSeconds = 1;
  t2.endSeconds = 2;
  p.record(t1);
  p.record(t2);
  return p;
}

TEST(Export, TraceCsvHasHeaderAndRows) {
  const auto csv = traceCsv(sampleProf());
  EXPECT_NE(csv.find("job,transformation,node,start,end"), std::string::npos);
  EXPECT_NE(csv.find("0,a,1,5.000,9.000,3.000,1.000,100,50,1024"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Export, GanttCsvSortedByNodeThenStart) {
  const auto csv = ganttCsv(sampleProf());
  const auto posNode0 = csv.find("0,1.000");
  const auto posNode1 = csv.find("1,5.000");
  ASSERT_NE(posNode0, std::string::npos);
  ASSERT_NE(posNode1, std::string::npos);
  EXPECT_LT(posNode0, posNode1);
}

TEST(Export, EmptyProfStillHasHeader) {
  prof::WfProf p;
  EXPECT_EQ(traceCsv(p), std::string{
      "job,transformation,node,start,end,cpu,io,bytes_read,bytes_written,peak_mem\n"});
  EXPECT_EQ(ganttCsv(p), std::string{"node,start,end,job,transformation\n"});
}

}  // namespace
}  // namespace wfs::analysis
