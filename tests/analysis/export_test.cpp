#include "analysis/export.hpp"

#include <gtest/gtest.h>

namespace wfs::analysis {
namespace {

wf::Dag tinyDag() {
  wf::Dag d;
  wf::JobSpec a;
  a.name = "prep";
  a.transformation = "prep";
  a.cpuSeconds = 2.5;
  a.outputs = {{"f", 1}};
  d.addJob(std::move(a));
  wf::JobSpec b;
  b.name = "use \"quoted\"";
  b.transformation = "use";
  b.inputs = {{"f", 1}};
  d.addJob(std::move(b));
  d.connectByFiles({});
  return d;
}

TEST(Export, DotContainsNodesAndEdges) {
  const auto dot = toDot(tinyDag(), "mini");
  EXPECT_NE(dot.find("digraph \"mini\""), std::string::npos);
  EXPECT_NE(dot.find("j0 [label=\"prep\\n2.5s cpu\"]"), std::string::npos);
  EXPECT_NE(dot.find("j0 -> j1;"), std::string::npos);
  // Quotes in names are escaped.
  EXPECT_NE(dot.find("use \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(dot.find("j1 -> j0"), std::string::npos);
}

prof::WfProf sampleProf() {
  prof::WfProf p;
  prof::TaskTrace t1;
  t1.jobId = 0;
  t1.transformation = "a";
  t1.node = 1;
  t1.startSeconds = 5;
  t1.endSeconds = 9;
  t1.cpuSeconds = 3;
  t1.ioSeconds = 1;
  t1.bytesRead = 100;
  t1.bytesWritten = 50;
  t1.peakMemory = 1024;
  prof::TaskTrace t2;
  t2.jobId = 1;
  t2.transformation = "b";
  t2.node = 0;
  t2.startSeconds = 1;
  t2.endSeconds = 2;
  p.record(t1);
  p.record(t2);
  return p;
}

TEST(Export, TraceCsvHasHeaderAndRows) {
  const auto csv = traceCsv(sampleProf());
  EXPECT_NE(csv.find("job,transformation,node,start,end"), std::string::npos);
  EXPECT_NE(csv.find("0,a,1,5.000,9.000,3.000,1.000,100,50,1024"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Export, GanttCsvSortedByNodeThenStart) {
  const auto csv = ganttCsv(sampleProf());
  const auto posNode0 = csv.find("0,1.000");
  const auto posNode1 = csv.find("1,5.000");
  ASSERT_NE(posNode0, std::string::npos);
  ASSERT_NE(posNode1, std::string::npos);
  EXPECT_LT(posNode0, posNode1);
}

TEST(Export, EmptyProfStillHasHeader) {
  prof::WfProf p;
  EXPECT_EQ(traceCsv(p), std::string{
      "job,transformation,node,start,end,cpu,io,bytes_read,bytes_written,peak_mem\n"});
  EXPECT_EQ(ganttCsv(p), std::string{"node,start,end,job,transformation\n"});
}

SweepCellResult sampleCell() {
  SweepCellResult cell;
  cell.config.app = App::kMontage;
  cell.config.storage = StorageKind::kNfs;
  cell.config.workerNodes = 2;
  cell.config.appScale = 0.5;
  cell.config.seed = 7;
  cell.ok = true;
  storage::LayerMetrics lm;
  lm.name = "nfs/client-cache";
  lm.readOps = 3;
  lm.writeOps = 2;
  lm.bytesRead = 300;
  lm.bytesWritten = 200;
  lm.cacheHits = 1;
  lm.cacheMisses = 2;
  lm.busySeconds = 1.5;
  lm.selfSeconds = 0.25;
  cell.result.storageMetrics.layers.push_back(lm);
  cell.result.storageMetrics.nodeIo(0).fromCache = 100;
  cell.result.storageMetrics.nodeIo(0).fromNetwork = 200;
  return cell;
}

TEST(Export, MetricsJsonlFixedKeyOrder) {
  const auto out = metricsJsonl(sampleCell());
  EXPECT_EQ(out,
            "{\"app\":\"montage\",\"storage\":\"nfs\",\"nodes\":2,\"scale\":0.5,"
            "\"seed\":7,\"layer\":\"nfs/client-cache\",\"read_ops\":3,\"write_ops\":2,"
            "\"scratch_ops\":0,\"discard_ops\":0,\"preload_ops\":0,\"bytes_read\":300,"
            "\"bytes_written\":200,\"cache_hits\":1,\"cache_misses\":2,\"busy_s\":1.5,"
            "\"self_s\":0.25,\"queue_s\":0,\"faults_injected\":0,"
            "\"faults_retried\":0,\"faults_exhausted\":0,\"outage_stalls\":0,"
            "\"degraded_reads\":0,\"reconstructions\":0,\"healed_files\":0,"
            "\"heal_bytes\":0}\n"
            "{\"app\":\"montage\",\"storage\":\"nfs\",\"nodes\":2,\"scale\":0.5,"
            "\"seed\":7,\"node\":0,\"from_cache_bytes\":100,\"from_disk_bytes\":0,"
            "\"from_network_bytes\":200,\"bytes_written\":0}\n");
}

TEST(Export, MetricsJsonlEmptyForFailedCell) {
  SweepCellResult cell = sampleCell();
  cell.ok = false;
  cell.error = "boom";
  EXPECT_EQ(metricsJsonl(cell), "");
  EXPECT_EQ(sweepMetricsJsonl({cell}), "");
}

}  // namespace
}  // namespace wfs::analysis
