#include "analysis/availability.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace wfs::analysis {
namespace {

/// Epigenome is the right probe workload here: its makespan is dominated by
/// one wide map phase, so killing a worker mid-run always costs wall-clock
/// time (montage's serial tail can absorb a crash for free).
AvailabilityOptions testOptions(int threads) {
  AvailabilityOptions opt;
  opt.app = App::kEpigenome;
  opt.appScale = 0.05;
  opt.nodes = 2;
  opt.seed = 42;
  opt.crashFrac = 0.5;
  opt.threads = threads;
  return opt;
}

TEST(AvailabilitySweep, CrashStopInflatesMakespanAndCostOnEveryBackend) {
  const std::vector<AvailabilityCell> cells = runAvailabilitySweep(testOptions(2));
  ASSERT_EQ(cells.size(), testOptions(2).backends.size());
  for (const AvailabilityCell& c : cells) {
    const std::string label = c.clean.label();
    ASSERT_TRUE(c.clean.ok) << label << ": " << c.clean.error;
    ASSERT_TRUE(c.faulted.ok) << label << ": " << c.faulted.error;
    const ExperimentResult& base = c.clean.result;
    const ExperimentResult& hurt = c.faulted.result;
    EXPECT_FALSE(base.fault.enabled) << label;
    EXPECT_TRUE(hurt.fault.enabled) << label;
    EXPECT_FALSE(hurt.fault.failed) << label;
    EXPECT_EQ(hurt.fault.crashes, 1u) << label;
    // Recovery is never free: the crash-stop twin pays strictly more
    // wall-clock AND strictly more money than the clean baseline.
    EXPECT_GT(hurt.makespanSeconds, base.makespanSeconds) << label;
    EXPECT_GT(hurt.cost.totalHourly(), base.cost.totalHourly()) << label;
    // The crash was injected mid-run, not before or after it.
    EXPECT_GT(c.crashAtSeconds, 0.0) << label;
    EXPECT_LT(c.crashAtSeconds, base.makespanSeconds) << label;
  }
}

TEST(AvailabilitySweep, JsonlIsByteIdenticalAcrossThreadCounts) {
  const std::string one = availabilityJsonl(runAvailabilitySweep(testOptions(1)));
  const std::string two = availabilityJsonl(runAvailabilitySweep(testOptions(2)));
  const std::string eight = availabilityJsonl(runAvailabilitySweep(testOptions(8)));
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(AvailabilitySweep, JsonlCarriesTheRecoveryCounters) {
  const std::string out = availabilityJsonl(runAvailabilitySweep(testOptions(2)));
  // One line per backend, each reporting the full recovery ledger.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            static_cast<long>(testOptions(2).backends.size()));
  EXPECT_NE(out.find("\"storage\":\"local\""), std::string::npos);
  EXPECT_NE(out.find("\"storage\":\"pvfs\""), std::string::npos);
  EXPECT_NE(out.find("\"crashes\":1"), std::string::npos);
  EXPECT_NE(out.find("\"makespan_inflation\":"), std::string::npos);
  EXPECT_NE(out.find("\"cost_inflation\":"), std::string::npos);
  EXPECT_NE(out.find("\"recomputed_jobs\":"), std::string::npos);
  EXPECT_NE(out.find("\"outage_stalls\":"), std::string::npos);
  EXPECT_EQ(out.find("\"error\""), std::string::npos);
}

TEST(AvailabilitySweep, NodeAttachedBackendsLoseAndRecomputeIntermediates) {
  const std::vector<AvailabilityCell> cells = runAvailabilitySweep(testOptions(2));
  bool sawRecompute = false;
  for (const AvailabilityCell& c : cells) {
    ASSERT_TRUE(c.faulted.ok);
    const FaultOutcome& f = c.faulted.result.fault;
    if (c.clean.config.storage == StorageKind::kLocal ||
        c.clean.config.storage == StorageKind::kGlusterNufa ||
        c.clean.config.storage == StorageKind::kPvfs) {
      EXPECT_GT(f.lostFiles, 0u) << c.clean.label();
      EXPECT_GT(f.recomputedJobs, 0u) << c.clean.label();
    }
    sawRecompute = sawRecompute || f.recomputedJobs > 0;
  }
  EXPECT_TRUE(sawRecompute);
}

TEST(AvailabilitySweep, ReplicationEliminatesRecomputeOnLoss) {
  AvailabilityOptions opt = testOptions(2);
  opt.nodes = 3;  // a brick outside the replica set keeps degraded reads possible
  opt.replicas = 2;
  opt.backends = {StorageKind::kGlusterNufa, StorageKind::kGlusterDist};
  const std::vector<AvailabilityCell> cells = runAvailabilitySweep(opt);
  ASSERT_EQ(cells.size(), 2u);
  for (const AvailabilityCell& c : cells) {
    const std::string label = c.clean.label();
    ASSERT_TRUE(c.clean.ok) << label << ": " << c.clean.error;
    ASSERT_TRUE(c.faulted.ok) << label << ": " << c.faulted.error;
    // The headline claim of the redundancy tier: a replicated volume turns
    // crash-lost files into degraded reads plus heal traffic — never into
    // recomputation.
    const FaultOutcome& f = c.faulted.result.fault;
    EXPECT_EQ(f.crashes, 1u) << label;
    EXPECT_EQ(f.lostFiles, 0u) << label;
    EXPECT_EQ(f.recomputedJobs, 0u) << label;
    const RedundancyOutcome& red = c.faulted.result.redundancy;
    EXPECT_TRUE(red.enabled) << label;
    EXPECT_GT(red.healedFiles, 0u) << label;
    EXPECT_GT(red.healBytes, 0u) << label;
    // The clean twin never degrades or heals.
    EXPECT_EQ(c.clean.result.redundancy.degradedReads, 0u) << label;
    EXPECT_EQ(c.clean.result.redundancy.healedFiles, 0u) << label;
  }
}

TEST(AvailabilitySweep, ErasureCodingEliminatesRecomputeOnLoss) {
  AvailabilityOptions opt = testOptions(2);
  opt.nodes = 3;
  opt.ecK = 2;
  opt.ecM = 1;
  opt.backends = {StorageKind::kPvfs};
  const std::vector<AvailabilityCell> cells = runAvailabilitySweep(opt);
  ASSERT_EQ(cells.size(), 1u);
  const AvailabilityCell& c = cells.front();
  ASSERT_TRUE(c.clean.ok) << c.clean.error;
  ASSERT_TRUE(c.faulted.ok) << c.faulted.error;
  const FaultOutcome& f = c.faulted.result.fault;
  EXPECT_EQ(f.crashes, 1u);
  // Plain striping loses the whole namespace to one crash (see
  // NodeAttachedBackendsLoseAndRecomputeIntermediates); one parity fragment
  // per stripe eliminates the loss entirely.
  EXPECT_EQ(f.lostFiles, 0u);
  EXPECT_EQ(f.recomputedJobs, 0u);
  const RedundancyOutcome& red = c.faulted.result.redundancy;
  EXPECT_TRUE(red.enabled);
  EXPECT_GT(red.healedFiles, 0u);
  EXPECT_GT(red.healBytes, 0u);
  EXPECT_EQ(c.clean.result.redundancy.reconstructions, 0u);
}

}  // namespace
}  // namespace wfs::analysis
