#include "analysis/fabric/fabric.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "analysis/fabric/cache.hpp"
#include "analysis/fabric/cellid.hpp"
#include "analysis/fabric/manifest.hpp"
#include "wf/synth/spec.hpp"

namespace wfs::analysis::fabric {
namespace {

/// Fresh per-test scratch directory under gtest's temp root.
std::string scratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "wfs_fabric_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A tiny synthetic grid: fast cells, several storage backends, fixed size.
std::vector<ExperimentConfig> tinyGrid() {
  const std::string spec = wf::synth::SynthSpec::parse("diamond:width=6").canonical();
  const struct {
    StorageKind kind;
    int nodes;
  } axes[] = {
      {StorageKind::kLocal, 1}, {StorageKind::kS3, 1},  {StorageKind::kS3, 2},
      {StorageKind::kNfs, 1},   {StorageKind::kNfs, 2}, {StorageKind::kGlusterNufa, 2},
  };
  std::vector<ExperimentConfig> cells;
  for (const auto& a : axes) {
    ExperimentConfig cfg;
    cfg.source = WorkflowSource::kSynthetic;
    cfg.synthSpec = spec;
    cfg.storage = a.kind;
    cfg.workerNodes = a.nodes;
    cells.push_back(cfg);
  }
  return cells;
}

std::vector<FabricCell> tinyCells() {
  std::vector<FabricCell> out;
  for (const ExperimentConfig& cfg : tinyGrid()) out.push_back(experimentCell(cfg));
  return out;
}

/// The single-process, single-thread, no-cache, no-checkpoint lines — the
/// byte-identity reference everything else must reproduce.
std::vector<std::string> referenceLines() {
  FabricOptions opt;
  opt.threads = 1;
  const FabricOutput out = runFabric(tinyCells(), opt);
  std::vector<std::string> lines;
  for (const FabricRecord& rec : out.records) lines.push_back(rec.line);
  return lines;
}

TEST(CellIdTest, EqualConfigsHashEqual) {
  ExperimentConfig a;
  ExperimentConfig b;
  EXPECT_EQ(configHash(a), configHash(b));
  EXPECT_EQ(configHashHex(a), configHashHex(b));
  EXPECT_EQ(configHashHex(a).size(), 16u);
  EXPECT_EQ(canonicalConfig(a).rfind("cfg-v2|", 0), 0u) << canonicalConfig(a);
}

TEST(CellIdTest, EveryResultAffectingFieldChangesTheHash) {
  const ExperimentConfig base;
  const std::uint64_t h0 = configHash(base);
  auto mutated = [&](auto&& mutate) {
    ExperimentConfig cfg = base;
    mutate(cfg);
    return configHash(cfg);
  };
  EXPECT_NE(mutated([](auto& c) { c.app = App::kBroadband; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.source = WorkflowSource::kSynthetic; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.workflowFile = "x.json"; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.synthSpec = "diamond:width=4"; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.storage = StorageKind::kNfs; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.workerNodes = 2; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.workerType = "m1.small"; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.nfsServerType = "m2.4xlarge"; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.dataAwareScheduling = true; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.firstWritePenalty = false; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.clusterFactor = 2; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.appScale = 0.5; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.seed = 7; }), h0);
  EXPECT_NE(mutated([](auto& c) { c.faults.enabled = true; }), h0);
}

TEST(CellIdTest, TraceIsDeliberatelyExcludedFromIdentity) {
  ExperimentConfig cfg;
  const std::uint64_t h0 = configHash(cfg);
  cfg.trace = true;  // logging only: must not invalidate checkpoints/caches
  EXPECT_EQ(configHash(cfg), h0);
}

TEST(CellIdTest, FaultSpecFieldsChangeTheHash) {
  ExperimentConfig base;
  base.faults.enabled = true;
  const std::uint64_t h0 = configHash(base);
  auto mutated = [&](auto&& mutate) {
    ExperimentConfig cfg = base;
    mutate(cfg.faults);
    return configHash(cfg);
  };
  EXPECT_NE(mutated([](auto& f) { f.seed = 9; }), h0);
  EXPECT_NE(mutated([](auto& f) { f.crashRatePerNodeHour = 0.5; }), h0);
  EXPECT_NE(mutated([](auto& f) { f.opFaultProb = 0.01; }), h0);
  EXPECT_NE(mutated([](auto& f) { f.outageRatePerHour = 1.0; }), h0);
  EXPECT_NE(mutated([](auto& f) { f.outageMeanSeconds = 60.0; }), h0);
  EXPECT_NE(mutated([](auto& f) { f.horizonSeconds = 60.0; }), h0);
  EXPECT_NE(mutated([](auto& f) { f.explicitCrashes.push_back({10.0, 0}); }), h0);
  EXPECT_NE(mutated([](auto& f) { f.explicitOutages.push_back({1.0, 2.0}); }), h0);
  EXPECT_NE(mutated([](auto& f) { f.maxOpRetries = 2; }), h0);
  EXPECT_NE(mutated([](auto& f) { f.retryBackoffSeconds = 2.0; }), h0);
}

TEST(ResultCacheTest, RoundTripAndMiss) {
  const ResultCache cache{scratchDir("cache_roundtrip")};
  EXPECT_EQ(cache.lookup("00112233aabbccdd"), std::nullopt);
  const std::string line = "{\"app\":\"montage\",\"makespan_s\":12.5}";
  cache.store("00112233aabbccdd", line);
  const auto hit = cache.lookup("00112233aabbccdd");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, line);
  // A second store of the same key is a harmless overwrite (shards racing).
  cache.store("00112233aabbccdd", line);
  EXPECT_EQ(cache.lookup("00112233aabbccdd"), line);
  EXPECT_EQ(cache.lookup("ffeeddccbbaa9988"), std::nullopt);
}

TEST(PartsLogTest, RoundTripToleratesTornTailAndMalformedLines) {
  const std::string path = scratchDir("parts") + "/out.jsonl.parts";
  {
    PartsLog log{path, /*truncate=*/true};
    log.append(PartRecord{0, "aaaaaaaaaaaaaaaa", "{\"x\":1}"});
    log.append(PartRecord{3, "bbbbbbbbbbbbbbbb", "{\"x\":2}"});
  }
  {
    // A malformed middle record and a torn final record, as a SIGKILL mid-
    // append would leave them.
    std::ofstream f{path, std::ios::app | std::ios::binary};
    f << "not-a-record\n";
    f << "7\tcccccccccccccccc\t{\"x\":3}";  // no newline: torn
  }
  const std::vector<PartRecord> recs = PartsLog::load(path);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].index, 0u);
  EXPECT_EQ(recs[0].hexHash, "aaaaaaaaaaaaaaaa");
  EXPECT_EQ(recs[0].line, "{\"x\":1}");
  EXPECT_EQ(recs[1].index, 3u);
  EXPECT_EQ(recs[1].line, "{\"x\":2}");
  EXPECT_TRUE(PartsLog::load(path + ".missing").empty());
}

TEST(ManifestTest, RoundTrip) {
  const std::string path = scratchDir("manifest") + "/frag.jsonl.manifest";
  ManifestInfo info;
  info.shardIndex = 1;
  info.shardCount = 3;
  info.gridCells = 18;
  info.gridHash = 0x0123456789abcdefULL;
  info.entries = {{1, "aaaaaaaaaaaaaaaa"}, {4, "bbbbbbbbbbbbbbbb"}};
  writeManifest(path, info);
  const ManifestInfo back = readManifest(path);
  EXPECT_EQ(back.shardIndex, info.shardIndex);
  EXPECT_EQ(back.shardCount, info.shardCount);
  EXPECT_EQ(back.gridCells, info.gridCells);
  EXPECT_EQ(back.gridHash, info.gridHash);
  EXPECT_EQ(back.entries, info.entries);
}

TEST(ManifestTest, MissingAndMalformedManifestsThrowNamingThePath) {
  const std::string dir = scratchDir("manifest_bad");
  try {
    (void)readManifest(dir + "/absent.manifest");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("absent.manifest"), std::string::npos) << e.what();
  }
  const std::string path = dir + "/corrupt.manifest";
  std::ofstream{path, std::ios::binary} << "# wfsim fragment manifest v1\ngarbage here\n";
  EXPECT_THROW((void)readManifest(path), std::runtime_error);
}

TEST(FabricTest, ShardsPartitionTheGridAndReassembleByteIdentically) {
  const std::vector<std::string> reference = referenceLines();
  const std::vector<FabricCell> cells = tinyCells();

  std::vector<std::string> merged(reference.size());
  std::set<std::size_t> covered;
  std::uint64_t gridHash = 0;
  for (int shard = 0; shard < 3; ++shard) {
    FabricOptions opt;
    opt.threads = 2;
    opt.shardIndex = shard;
    opt.shardCount = 3;
    const FabricOutput out = runFabric(cells, opt);
    EXPECT_EQ(out.stats.gridCells, cells.size());
    if (shard == 0) {
      gridHash = out.gridHash;
    } else {
      EXPECT_EQ(out.gridHash, gridHash);  // every shard can name the full grid
    }
    for (const FabricRecord& rec : out.records) {
      EXPECT_EQ(rec.index % 3u, static_cast<std::size_t>(shard));
      EXPECT_TRUE(covered.insert(rec.index).second) << "cell " << rec.index << " ran twice";
      merged[rec.index] = rec.line;
    }
  }
  EXPECT_EQ(covered.size(), reference.size());
  EXPECT_EQ(merged, reference);
}

TEST(FabricTest, ResumeIsByteIdenticalAtAnyThreadCount) {
  const std::vector<std::string> reference = referenceLines();
  const std::string dir = scratchDir("resume");

  for (const int threads : {1, 2, 8}) {
    const std::string checkpoint =
        dir + "/t" + std::to_string(threads) + ".jsonl.parts";
    // A full checkpoint, then truncated to its first 2 records — the state
    // a killed run leaves behind.
    {
      FabricOptions opt;
      opt.threads = 1;
      opt.checkpoint = checkpoint;
      (void)runFabric(tinyCells(), opt);
    }
    std::vector<PartRecord> recs = PartsLog::load(checkpoint);
    ASSERT_EQ(recs.size(), reference.size());
    recs.resize(2);
    {
      PartsLog log{checkpoint, /*truncate=*/true};
      for (const PartRecord& rec : recs) log.append(rec);
    }

    FabricOptions opt;
    opt.threads = threads;
    opt.resume = true;
    opt.checkpoint = checkpoint;
    const FabricOutput out = runFabric(tinyCells(), opt);
    EXPECT_EQ(out.stats.resumed, 2u);
    EXPECT_EQ(out.stats.simulated, reference.size() - 2);
    ASSERT_EQ(out.records.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(out.records[i].line, reference[i]) << "threads=" << threads << " cell " << i;
    }
    // The resumed log now holds every cell again (resumed ones were already
    // on disk; fresh ones were appended).
    EXPECT_EQ(PartsLog::load(checkpoint).size(), reference.size());
  }
}

TEST(FabricTest, WarmCacheServesEveryCellWithoutSimulating) {
  const std::vector<std::string> reference = referenceLines();
  const std::string cacheDir = scratchDir("cache_warm");

  FabricOptions opt;
  opt.threads = 2;
  opt.cacheDir = cacheDir;
  const FabricOutput cold = runFabric(tinyCells(), opt);
  EXPECT_EQ(cold.stats.simulated, reference.size());
  EXPECT_EQ(cold.stats.cacheMisses, reference.size());
  EXPECT_EQ(cold.stats.cacheHits, 0u);

  const FabricOutput warm = runFabric(tinyCells(), opt);
  EXPECT_EQ(warm.stats.simulated, 0u);
  EXPECT_EQ(warm.stats.cacheHits, reference.size());
  ASSERT_EQ(warm.records.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(warm.records[i].line, reference[i]) << "cell " << i;
    EXPECT_EQ(warm.records[i].source, CellSource::kCacheHit);
  }
}

TEST(FabricTest, ErrorCellsAreReportedInPlaceButNeverCached) {
  ExperimentConfig bad;  // node-attached storage with 4 workers is invalid
  bad.storage = StorageKind::kLocal;
  bad.workerNodes = 4;
  bad.appScale = 0.05;
  const std::vector<FabricCell> cells{experimentCell(bad)};
  FabricOptions opt;
  opt.threads = 1;
  opt.cacheDir = scratchDir("cache_error");

  const FabricOutput first = runFabric(cells, opt);
  ASSERT_EQ(first.records.size(), 1u);
  EXPECT_NE(first.records[0].line.find("\"error\":"), std::string::npos)
      << first.records[0].line;
  const FabricOutput second = runFabric(cells, opt);
  EXPECT_EQ(second.stats.cacheHits, 0u);  // the failure was not installed
  EXPECT_EQ(second.stats.simulated, 1u);
  EXPECT_EQ(second.records[0].line, first.records[0].line);
}

TEST(FabricTest, ForeignCheckpointsAreRejectedNotFolded) {
  const std::string dir = scratchDir("foreign");
  const std::string checkpoint = dir + "/out.jsonl.parts";
  {
    FabricOptions opt;
    opt.threads = 1;
    opt.checkpoint = checkpoint;
    (void)runFabric(tinyCells(), opt);
  }

  // Same grid shape, different seed: every hash changes, so the checkpoint
  // must be refused, not silently reused.
  std::vector<FabricCell> other;
  for (ExperimentConfig cfg : tinyGrid()) {
    cfg.seed = 99;
    other.push_back(experimentCell(cfg));
  }
  FabricOptions opt;
  opt.threads = 1;
  opt.resume = true;
  opt.checkpoint = checkpoint;
  EXPECT_THROW((void)runFabric(other, opt), std::runtime_error);

  // A checkpoint whose indices fall outside the shard is just as foreign.
  std::filesystem::remove(checkpoint);
  {
    PartsLog log{checkpoint, /*truncate=*/true};
    log.append(PartRecord{1, "aaaaaaaaaaaaaaaa", "{}"});  // index 1 is shard 1/2's
  }
  FabricOptions sharded;
  sharded.threads = 1;
  sharded.shardIndex = 0;
  sharded.shardCount = 2;
  sharded.resume = true;
  sharded.checkpoint = checkpoint;
  EXPECT_THROW((void)runFabric(tinyCells(), sharded), std::runtime_error);
}

TEST(FabricTest, ShardSpecOutOfRangeThrows) {
  FabricOptions opt;
  opt.shardIndex = 5;
  opt.shardCount = 4;
  EXPECT_THROW((void)runFabric(tinyCells(), opt), std::logic_error);
}

TEST(LineFieldTest, ExtractsWholeFieldsOnly) {
  const std::string line =
      "{\"app\":\"montage\",\"note\":\"x,\\\"makespan_s\\\":99\",\"makespan_s\":12.5,"
      "\"tasks\":20}";
  const auto makespan = lineNumberField(line, "makespan_s");
  ASSERT_TRUE(makespan.has_value());
  EXPECT_EQ(*makespan, 12.5);  // the decoy inside the string value is skipped
  const auto app = lineStringField(line, "app");
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ(*app, "montage");
  EXPECT_EQ(lineStringField(line, "note"), "x,\"makespan_s\":99");
  EXPECT_EQ(lineNumberField(line, "absent"), std::nullopt);
  EXPECT_EQ(lineStringField(line, "absent"), std::nullopt);
}

}  // namespace
}  // namespace wfs::analysis::fabric
