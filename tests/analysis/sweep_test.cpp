#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "analysis/export.hpp"
#include "analysis/repeat.hpp"

namespace wfs::analysis {
namespace {

/// A small but heterogeneous Montage grid — the Fig 2 axes at toy scale.
std::vector<ExperimentConfig> smallMontageGrid() {
  std::vector<ExperimentConfig> cells;
  for (const StorageKind kind : {StorageKind::kLocal, StorageKind::kS3, StorageKind::kNfs,
                                 StorageKind::kGlusterNufa}) {
    for (const int nodes : {1, 2, 4}) {
      if (kind == StorageKind::kLocal && nodes != 1) continue;
      if (kind == StorageKind::kGlusterNufa && nodes < 2) continue;
      ExperimentConfig cfg;
      cfg.app = App::kMontage;
      cfg.storage = kind;
      cfg.workerNodes = nodes;
      cfg.appScale = 0.05;
      cells.push_back(cfg);
    }
  }
  return cells;
}

TEST(SweepRunnerTest, ByteIdenticalJsonlAcrossThreadCounts) {
  const std::vector<ExperimentConfig> grid = smallMontageGrid();
  std::string reference;
  for (const int threads : {1, 2, 8}) {
    SweepRunner::Options opt;
    opt.threads = threads;
    const auto results = SweepRunner{opt}.run(grid);
    ASSERT_EQ(results.size(), grid.size());
    for (const auto& cell : results) EXPECT_TRUE(cell.ok) << cell.label() << ": " << cell.error;
    const std::string jsonl = sweepJsonl(results);
    if (threads == 1) {
      reference = jsonl;
      ASSERT_FALSE(reference.empty());
    } else {
      // Byte-identical merge: results land by cell index, not completion
      // order, so thread count must not show up in the output.
      EXPECT_EQ(jsonl, reference) << "with " << threads << " threads";
    }
  }
}

TEST(SweepRunnerTest, RecordsFailedCellsInPlace) {
  std::vector<ExperimentConfig> cells(3);
  cells[0].storage = StorageKind::kLocal;
  cells[0].workerNodes = 1;
  cells[1].storage = StorageKind::kLocal;
  cells[1].workerNodes = 4;  // invalid: node-attached storage is single-node
  cells[2].storage = StorageKind::kNfs;
  cells[2].workerNodes = 2;
  for (auto& c : cells) c.appScale = 0.05;

  SweepRunner::Options opt;
  opt.threads = 2;
  const auto results = SweepRunner{opt}.run(cells);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("node-attached"), std::string::npos) << results[1].error;
  EXPECT_TRUE(results[2].ok);

  // The failed cell serializes with an error key, valid neighbours normally.
  const std::string line = cellJson(results[1]);
  EXPECT_NE(line.find("\"error\":"), std::string::npos);
  EXPECT_EQ(line.find("makespan_s"), std::string::npos);
}

TEST(SweepRunnerTest, ProgressSeesEveryCellExactlyOnce) {
  const std::vector<ExperimentConfig> grid = smallMontageGrid();
  std::atomic<std::size_t> calls{0};
  std::size_t lastDone = 0;
  bool monotone = true;
  SweepRunner::Options opt;
  opt.threads = 4;
  opt.progress = [&](std::size_t done, std::size_t total, const SweepCellResult&) {
    // The callback is serialized, so `done` must tick 1..total in order.
    calls.fetch_add(1);
    if (done != lastDone + 1 || total != grid.size()) monotone = false;
    lastDone = done;
  };
  const auto results = SweepRunner{opt}.run(grid);
  EXPECT_EQ(calls.load(), grid.size());
  EXPECT_TRUE(monotone);
  EXPECT_EQ(lastDone, results.size());
}

TEST(SweepRunnerTest, EmptyGridAndThreadResolution) {
  SweepRunner::Options opt;
  opt.threads = 8;
  EXPECT_TRUE(SweepRunner{opt}.run({}).empty());
  EXPECT_EQ(SweepRunner{opt}.resolveThreads(3), 3);  // never more threads than cells
  EXPECT_EQ(SweepRunner{opt}.resolveThreads(100), 8);
  SweepRunner::Options one;
  one.threads = 1;
  EXPECT_EQ(SweepRunner{one}.resolveThreads(100), 1);
  SweepRunner::Options autoThreads;  // 0 = hardware concurrency, at least 1
  EXPECT_GE(SweepRunner{autoThreads}.resolveThreads(100), 1);
}

TEST(SweepRunnerTest, MatchesSerialRunExperiment) {
  ExperimentConfig cfg;
  cfg.app = App::kEpigenome;
  cfg.storage = StorageKind::kS3;
  cfg.workerNodes = 2;
  cfg.appScale = 0.05;
  const ExperimentResult serial = runExperiment(cfg);

  SweepRunner::Options opt;
  opt.threads = 2;
  const auto viaPool = SweepRunner{opt}.run({cfg, cfg});
  for (const auto& cell : viaPool) {
    ASSERT_TRUE(cell.ok) << cell.error;
    EXPECT_EQ(cell.result.makespanSeconds, serial.makespanSeconds);
    EXPECT_EQ(cell.result.cost.totalHourly(), serial.cost.totalHourly());
    EXPECT_EQ(cell.result.storageMetrics.bytesWritten, serial.storageMetrics.bytesWritten);
  }
}

TEST(RepeatExperimentTest, ParallelAggregateMatchesSerial) {
  ExperimentConfig cfg;
  cfg.app = App::kMontage;
  cfg.storage = StorageKind::kNfs;
  cfg.workerNodes = 2;
  cfg.appScale = 0.05;
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5};
  const RepeatedResult serial = repeatExperiment(cfg, seeds, 1);
  const RepeatedResult parallel = repeatExperiment(cfg, seeds, 4);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  EXPECT_EQ(serial.makespan.mean(), parallel.makespan.mean());
  EXPECT_EQ(serial.costHourly.mean(), parallel.costHourly.mean());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(serial.runs[i].makespanSeconds, parallel.runs[i].makespanSeconds) << i;
  }
}

TEST(SweepJsonlTest, OneLinePerCellWithStableKeys) {
  std::vector<ExperimentConfig> cells(2);
  cells[0].app = App::kEpigenome;
  cells[0].storage = StorageKind::kLocal;
  cells[0].workerNodes = 1;
  cells[0].appScale = 0.05;
  cells[1] = cells[0];
  cells[1].storage = StorageKind::kNfs;
  cells[1].workerNodes = 2;
  const auto results = SweepRunner{}.run(cells);
  const std::string jsonl = sweepJsonl(results);

  std::size_t lines = 0;
  for (const char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(jsonl.find("\"app\":\"epigenome\""), jsonl.find('{') + 1);
  EXPECT_NE(jsonl.find("\"storage\":\"nfs\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"nfs_server\":\"m1.xlarge\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"makespan_s\":"), std::string::npos);
  // nfs_server only appears on the NFS cell.
  EXPECT_EQ(jsonl.find("\"nfs_server\""), jsonl.rfind("\"nfs_server\""));
}

}  // namespace
}  // namespace wfs::analysis
