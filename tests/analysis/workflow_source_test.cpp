#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/export.hpp"
#include "analysis/sweep.hpp"

namespace wfs::analysis {
namespace {

constexpr const char* kDiamondTrace = WFS_SOURCE_DIR "/examples/workflows/diamond_min.json";
constexpr const char* kEpigenomicsTrace =
    WFS_SOURCE_DIR "/examples/workflows/epigenomics_sub.json";

ExperimentConfig synthCell(StorageKind storage, int nodes) {
  ExperimentConfig cfg;
  cfg.source = WorkflowSource::kSynthetic;
  cfg.synthSpec = "layered:tasks=120,width=12,fanin=2,mix=balanced,cpu=10,file=16MB";
  cfg.storage = storage;
  cfg.workerNodes = nodes;
  return cfg;
}

ExperimentConfig traceCell(const char* path, StorageKind storage, int nodes) {
  ExperimentConfig cfg;
  cfg.source = WorkflowSource::kImportedTrace;
  cfg.workflowFile = path;
  cfg.storage = storage;
  cfg.workerNodes = nodes;
  return cfg;
}

TEST(WorkflowSourceTest, ImportedTraceRunsEndToEnd) {
  const ExperimentResult r = runExperiment(traceCell(kEpigenomicsTrace, StorageKind::kNfs, 2));
  EXPECT_EQ(r.tasks, 24);
  EXPECT_EQ(r.workflowName, "epigenomics-sub");
  EXPECT_GT(r.makespanSeconds, 0.0);
  EXPECT_GT(r.storageMetrics.bytesWritten, 0);
}

TEST(WorkflowSourceTest, SyntheticRunsEndToEnd) {
  const ExperimentResult r = runExperiment(synthCell(StorageKind::kS3, 2));
  EXPECT_EQ(r.tasks, 120);
  EXPECT_EQ(r.workflowName, "layered:tasks=120,width=12,fanin=2,mix=balanced,cpu=10,file=16MB");
  EXPECT_GT(r.makespanSeconds, 0.0);
}

TEST(WorkflowSourceTest, ExternalSourcesRejectAppScale) {
  ExperimentConfig cfg = synthCell(StorageKind::kLocal, 1);
  cfg.appScale = 0.5;
  EXPECT_THROW((void)runExperiment(cfg), std::invalid_argument);

  ExperimentConfig trace = traceCell(kDiamondTrace, StorageKind::kLocal, 1);
  trace.appScale = 2.0;
  EXPECT_THROW((void)runExperiment(trace), std::invalid_argument);
}

TEST(WorkflowSourceTest, SweepJsonlByteIdenticalAcrossThreadCounts) {
  // A mixed grid: synthetic and imported cells in one sweep, as
  // `wfsim sweep --synth ... --jsonl` produces.
  std::vector<ExperimentConfig> grid;
  for (const StorageKind kind : {StorageKind::kLocal, StorageKind::kNfs, StorageKind::kS3}) {
    const int nodes = kind == StorageKind::kLocal ? 1 : 2;
    grid.push_back(synthCell(kind, nodes));
    grid.push_back(traceCell(kDiamondTrace, kind, nodes));
  }

  std::string reference;
  for (const int threads : {1, 2, 8}) {
    SweepRunner::Options opt;
    opt.threads = threads;
    const auto results = SweepRunner{opt}.run(grid);
    ASSERT_EQ(results.size(), grid.size());
    for (const auto& cell : results) EXPECT_TRUE(cell.ok) << cell.label() << ": " << cell.error;
    const std::string jsonl = sweepJsonl(results);
    if (threads == 1) {
      reference = jsonl;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(jsonl, reference) << "with " << threads << " threads";
    }
  }
}

TEST(WorkflowSourceTest, CellJsonNamesTheWorkflowSource) {
  SweepRunner::Options opt;
  opt.threads = 1;
  const auto results = SweepRunner{opt}.run(
      {synthCell(StorageKind::kLocal, 1), traceCell(kDiamondTrace, StorageKind::kLocal, 1)});
  ASSERT_EQ(results.size(), 2u);

  const std::string synthLine = cellJson(results[0]);
  EXPECT_NE(synthLine.find("\"app\":\"synth\""), std::string::npos) << synthLine;
  EXPECT_NE(synthLine.find("\"synth_spec\":\"layered:tasks=120,"), std::string::npos) << synthLine;
  EXPECT_EQ(synthLine.find("\"workflow_file\""), std::string::npos) << synthLine;

  const std::string traceLine = cellJson(results[1]);
  EXPECT_NE(traceLine.find("\"app\":\"workflow\""), std::string::npos) << traceLine;
  EXPECT_NE(traceLine.find("\"workflow_file\""), std::string::npos) << traceLine;
  EXPECT_EQ(traceLine.find("\"synth_spec\""), std::string::npos) << traceLine;

  // Labels lead with the source tag so mixed-grid progress lines read well.
  EXPECT_EQ(results[0].label().rfind("synth", 0), 0u) << results[0].label();
  EXPECT_EQ(results[1].label().rfind("workflow", 0), 0u) << results[1].label();
}

TEST(WorkflowSourceTest, BuiltinCellJsonIsUnchanged) {
  // Regression guard for the fig2_montage.jsonl byte-identity gate: builtin
  // cells must not grow workflow_file/synth_spec keys.
  ExperimentConfig cfg;
  cfg.app = App::kMontage;
  cfg.storage = StorageKind::kLocal;
  cfg.workerNodes = 1;
  cfg.appScale = 0.05;
  SweepRunner::Options opt;
  opt.threads = 1;
  const auto results = SweepRunner{opt}.run({cfg});
  ASSERT_TRUE(results[0].ok) << results[0].error;
  const std::string line = cellJson(results[0]);
  EXPECT_NE(line.find("\"app\":\"montage\""), std::string::npos) << line;
  EXPECT_EQ(line.find("\"workflow_file\""), std::string::npos) << line;
  EXPECT_EQ(line.find("\"synth_spec\""), std::string::npos) << line;
}

TEST(WorkflowSourceTest, ImportedSweepFailureIsRecordedInPlace) {
  // A bad trace path fails its cell without aborting the sweep.
  std::vector<ExperimentConfig> grid = {
      synthCell(StorageKind::kLocal, 1),
      traceCell("/nonexistent/trace.json", StorageKind::kLocal, 1),
  };
  SweepRunner::Options opt;
  opt.threads = 2;
  const auto results = SweepRunner{opt}.run(grid);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("cannot open file"), std::string::npos) << results[1].error;
}

}  // namespace
}  // namespace wfs::analysis
