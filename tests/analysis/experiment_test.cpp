#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include "analysis/report.hpp"

#include <cmath>

namespace wfs::analysis {
namespace {

ExperimentConfig quick(App app, StorageKind kind, int nodes, double scale) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.storage = kind;
  cfg.workerNodes = nodes;
  cfg.appScale = scale;
  return cfg;
}

TEST(Experiment, MontageLocalSmokes) {
  const auto r = runExperiment(quick(App::kMontage, StorageKind::kLocal, 1, 0.02));
  EXPECT_GT(r.makespanSeconds, 0.0);
  EXPECT_GT(r.tasks, 100);
  EXPECT_GT(r.cost.totalHourly(), 0.0);
  EXPECT_GE(r.cost.totalHourly(), r.cost.totalPerSecond());
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto a = runExperiment(quick(App::kEpigenome, StorageKind::kS3, 2, 0.05));
  const auto b = runExperiment(quick(App::kEpigenome, StorageKind::kS3, 2, 0.05));
  EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
  EXPECT_EQ(a.storageMetrics.getRequests, b.storageMetrics.getRequests);
}

TEST(Experiment, EveryStorageKindRuns) {
  for (const StorageKind kind :
       {StorageKind::kS3, StorageKind::kNfs, StorageKind::kGlusterNufa,
        StorageKind::kGlusterDist, StorageKind::kPvfs, StorageKind::kXtreemFs}) {
    const auto r = runExperiment(quick(App::kBroadband, StorageKind{kind}, 2, 0.1));
    EXPECT_GT(r.makespanSeconds, 0.0) << toString(kind);
    EXPECT_EQ(r.storageName, toString(kind));
  }
}

TEST(Experiment, LocalRejectsMultiNode) {
  EXPECT_THROW((void)runExperiment(quick(App::kMontage, StorageKind::kLocal, 2, 0.02)),
               std::invalid_argument);
}

TEST(Experiment, GlusterRejectsSingleNode) {
  EXPECT_THROW(
      (void)runExperiment(quick(App::kMontage, StorageKind::kGlusterNufa, 1, 0.02)),
      std::invalid_argument);
}

TEST(Experiment, NfsChargesForExtraNode) {
  const auto nfs = runExperiment(quick(App::kEpigenome, StorageKind::kNfs, 1, 0.05));
  const auto s3 = runExperiment(quick(App::kEpigenome, StorageKind::kS3, 1, 0.05));
  // Same worker count, but NFS pays for the dedicated m1.xlarge server.
  const double nfsRate = nfs.cost.resourceCostPerSecond / nfs.makespanSeconds;
  const double s3Rate = s3.cost.resourceCostPerSecond / s3.makespanSeconds;
  EXPECT_NEAR(nfsRate / s3Rate, 2.0, 0.01);  // 2 x $0.68 vs 1 x $0.68
}

TEST(Experiment, S3RequestFeesAppear) {
  const auto r = runExperiment(quick(App::kMontage, StorageKind::kS3, 2, 0.02));
  EXPECT_GT(r.cost.s3RequestCost, 0.0);
  EXPECT_GT(r.storageMetrics.putRequests, 0u);
}

TEST(Experiment, AddingNodesSpeedsUpCpuBoundApp) {
  const auto n1 = runExperiment(quick(App::kEpigenome, StorageKind::kNfs, 1, 0.5));
  const auto n4 = runExperiment(quick(App::kEpigenome, StorageKind::kNfs, 4, 0.5));
  EXPECT_LT(n4.makespanSeconds, n1.makespanSeconds * 0.5);
}

TEST(Experiment, FirstWritePenaltyAblationMatters) {
  // Large enough that the mosaic write overruns the dirty buffer and the
  // flusher's first-write rate becomes the bottleneck.
  auto with = quick(App::kMontage, StorageKind::kGlusterNufa, 2, 0.5);
  auto without = with;
  without.firstWritePenalty = false;
  const auto a = runExperiment(with);
  const auto b = runExperiment(without);
  EXPECT_LT(b.makespanSeconds, a.makespanSeconds * 0.98);
}

TEST(Report, RenderTableAndCsv) {
  std::vector<Series> series;
  series.push_back(Series{"s3", {10.0, 20.0}});
  series.push_back(Series{"nfs", {15.0, std::nan("")}});
  const auto table = renderTable("Fig X", {"1", "2"}, series, "seconds");
  EXPECT_NE(table.find("s3"), std::string::npos);
  EXPECT_NE(table.find("-"), std::string::npos);
  const auto csv = renderCsv({"1", "2"}, series);
  EXPECT_NE(csv.find("s3,10.000,20.000"), std::string::npos);
}

}  // namespace
}  // namespace wfs::analysis
