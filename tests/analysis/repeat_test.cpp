#include "analysis/repeat.hpp"

#include <gtest/gtest.h>

namespace wfs::analysis {
namespace {

ExperimentConfig quickCfg() {
  ExperimentConfig cfg;
  cfg.app = App::kEpigenome;
  cfg.storage = StorageKind::kNfs;
  cfg.workerNodes = 2;
  cfg.appScale = 0.05;
  return cfg;
}

TEST(Repeat, AggregatesAcrossSeeds) {
  const auto agg = repeatExperiment(quickCfg(), {1, 2, 3, 4});
  EXPECT_EQ(agg.runs.size(), 4u);
  EXPECT_EQ(agg.makespan.count(), 4u);
  EXPECT_GT(agg.makespan.mean(), 0.0);
  EXPECT_GE(agg.makespan.max(), agg.makespan.min());
  // Different seeds resample task jitter, so some spread is expected.
  EXPECT_GT(agg.makespan.stddev(), 0.0);
}

TEST(Repeat, IdenticalSeedListsReproduce) {
  const auto a = repeatExperiment(quickCfg(), {7, 8});
  const auto b = repeatExperiment(quickCfg(), {7, 8});
  EXPECT_DOUBLE_EQ(a.makespan.mean(), b.makespan.mean());
  EXPECT_DOUBLE_EQ(a.costPerSecond.mean(), b.costPerSecond.mean());
}

TEST(Repeat, SpreadIsModest) {
  // Workload jitter is +-10% per task; aggregate makespan spread should be
  // well within +-15% of the mean.
  const auto agg = repeatExperiment(quickCfg(), {1, 2, 3, 4, 5});
  EXPECT_LT(agg.makespan.max() - agg.makespan.min(), agg.makespan.mean() * 0.3);
}

TEST(Experiment, P2pKindRunsThroughDriver) {
  ExperimentConfig cfg;
  cfg.app = App::kBroadband;
  cfg.storage = StorageKind::kP2p;
  cfg.workerNodes = 4;
  cfg.appScale = 0.1;
  const auto r = runExperiment(cfg);
  EXPECT_GT(r.makespanSeconds, 0.0);
  EXPECT_EQ(r.storageName, "p2p");
}

TEST(Experiment, ClusteringReducesSchedulerLoadNotWork) {
  ExperimentConfig cfg;
  cfg.app = App::kMontage;
  cfg.storage = StorageKind::kGlusterNufa;
  cfg.workerNodes = 2;
  cfg.appScale = 0.05;
  const auto plain = runExperiment(cfg);
  cfg.clusterFactor = 8;
  const auto clustered = runExperiment(cfg);
  EXPECT_LT(clustered.tasks, plain.tasks);
  // Same data and compute move through the system either way.
  EXPECT_NEAR(static_cast<double>(clustered.storageMetrics.bytesWritten),
              static_cast<double>(plain.storageMetrics.bytesWritten),
              static_cast<double>(plain.storageMetrics.bytesWritten) * 0.05);
}

TEST(Experiment, XtreemKindRunsThroughDriver) {
  ExperimentConfig cfg;
  cfg.app = App::kEpigenome;
  cfg.storage = StorageKind::kXtreemFs;
  cfg.workerNodes = 2;
  cfg.appScale = 0.05;
  const auto r = runExperiment(cfg);
  EXPECT_EQ(r.storageName, "xtreemfs");
  EXPECT_GT(r.makespanSeconds, 0.0);
}

}  // namespace
}  // namespace wfs::analysis
