// Table I reproduction: application resource usage comparison.
//
// The paper profiled each application with a ptrace-based tool (wfprof) and
// classified them as:
//
//   Application   I/O     Memory   CPU
//   Montage       High    Low      Low
//   Broadband     Medium  High     Medium
//   Epigenome     Low     Medium   High
//
// We run each application on a single node with the local disk (profiling
// setup) and regenerate the classification from the simulated task traces.

#include <cstdio>

#include "bench_common.hpp"
#include "prof/wfprof.hpp"

int main() {
  using namespace wfs::bench;
  using wfs::prof::UsageLevel;
  const double scale = benchScale();
  std::printf("=== Table I: application resource usage (scale %.2f) ===\n", scale);
  std::printf("  %-12s %-8s %-8s %-8s   (io%%  cpu%%  mem>1GB%%)\n", "Application", "I/O",
              "Memory", "CPU");

  struct Row {
    App app;
    const char* name;
    UsageLevel io, mem, cpu;
  };
  const Row expected[] = {
      {App::kMontage, "Montage", UsageLevel::kHigh, UsageLevel::kLow, UsageLevel::kLow},
      {App::kBroadband, "Broadband", UsageLevel::kMedium, UsageLevel::kHigh,
       UsageLevel::kMedium},
      {App::kEpigenome, "Epigenome", UsageLevel::kLow, UsageLevel::kMedium,
       UsageLevel::kHigh},
  };

  bool ok = true;
  for (const Row& row : expected) {
    ExperimentConfig cfg;
    cfg.app = row.app;
    cfg.storage = StorageKind::kLocal;
    cfg.workerNodes = 1;
    cfg.appScale = scale;
    std::fprintf(stderr, "  profiling %s...\n", row.name);
    const auto r = wfs::analysis::runExperiment(cfg);
    const auto& p = r.profile;
    std::printf("  %-12s %-8s %-8s %-8s   (%4.1f  %4.1f  %5.1f)\n", row.name,
                toString(p.ioLevel), toString(p.memoryLevel), toString(p.cpuLevel),
                100 * p.ioFraction, 100 * p.cpuFraction,
                100 * p.memHeavyRuntimeFraction);
    ok &= shapeCheck((std::string(row.name) + " I/O level matches Table I").c_str(),
                     p.ioLevel == row.io);
    ok &= shapeCheck((std::string(row.name) + " memory level matches Table I").c_str(),
                     p.memoryLevel == row.mem);
    ok &= shapeCheck((std::string(row.name) + " CPU level matches Table I").c_str(),
                     p.cpuLevel == row.cpu);
  }
  return ok ? 0 : 1;
}
