// §IV narrative reproduction: XtreemFS was dropped from the full sweep
// because workflows took "more than twice as long as they did on the
// storage systems reported".
//
// We run a reduced Montage on XtreemFS and on the best reported system
// (GlusterFS NUFA) and verify the >2x gap.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wfs::bench;
  // XtreemFS runs were terminated early in the paper; a reduced scale keeps
  // this harness affordable while preserving the ratio.
  const double scale = benchScale() * 0.25;
  std::printf("=== §IV: XtreemFS exclusion experiment (scale %.2f) ===\n", scale);

  ExperimentConfig cfg;
  cfg.app = App::kMontage;
  cfg.workerNodes = 2;
  cfg.appScale = scale;

  cfg.storage = StorageKind::kGlusterNufa;
  std::fprintf(stderr, "  running montage / gluster-nufa / 2 nodes...\n");
  const auto gluster = wfs::analysis::runExperiment(cfg);
  cfg.storage = StorageKind::kXtreemFs;
  std::fprintf(stderr, "  running montage / xtreemfs / 2 nodes...\n");
  const auto xtreem = wfs::analysis::runExperiment(cfg);

  std::printf("  gluster-nufa: %8.0f s\n", gluster.makespanSeconds);
  std::printf("  xtreemfs:     %8.0f s   (%.1fx)\n", xtreem.makespanSeconds,
              xtreem.makespanSeconds / gluster.makespanSeconds);
  const bool ok = shapeCheck("XtreemFS takes more than twice as long as GlusterFS",
                             xtreem.makespanSeconds > 2.0 * gluster.makespanSeconds);
  return ok ? 0 : 1;
}
