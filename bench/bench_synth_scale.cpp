// M2: synthetic-workflow scaling (google-benchmark). Guards the two costs
// the generator was built to keep flat: DAG construction itself (interned
// FileIds + up-front reserve, so 10^5-10^6 tasks stay allocation-lean) and
// one full end-to-end simulation of a 10^5-task layered workflow — the
// "can the engine take an externally-sized workload" probe tracked in
// BENCH_6.json (see EXPERIMENTS.md §11).

#include <benchmark/benchmark.h>

#include <string>

#include "analysis/experiment.hpp"
#include "simcore/rng.hpp"
#include "wf/synth/generate.hpp"
#include "wf/synth/spec.hpp"

namespace {

using namespace wfs;

void BM_SynthGenerate(benchmark::State& state) {
  const wf::synth::SynthSpec spec = wf::synth::SynthSpec::parse(
      "layered:tasks=" + std::to_string(state.range(0)) + ",fanin=2");
  for (auto _ : state) {
    sim::Rng rng;
    wf::AbstractWorkflow awf = wf::synth::makeSynthetic(spec, rng);
    benchmark::DoNotOptimize(awf.dag.jobCount());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SynthGenerate)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_SynthRunLayered100k(benchmark::State& state) {
  analysis::ExperimentConfig cfg;
  cfg.source = analysis::WorkflowSource::kSynthetic;
  cfg.synthSpec = "layered:tasks=100000,width=317,fanin=2,mix=balanced,cpu=10,file=16MB";
  cfg.storage = analysis::StorageKind::kNfs;
  cfg.workerNodes = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::runExperiment(cfg).makespanSeconds);
  }
  state.SetItemsProcessed(state.iterations() * 100000);  // tasks simulated
}
BENCHMARK(BM_SynthRunLayered100k)->Unit(benchmark::kSecond);

}  // namespace

BENCHMARK_MAIN();
