// Fig 2 reproduction: Montage makespan per storage system and cluster size.
//
// Paper shape: GlusterFS (both modes) clearly best; NFS does relatively
// well (even beating local disk on one node thanks to async writes into the
// big-memory server); S3 and PVFS are the worst because Montage touches
// ~29,000 small files.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wfs::bench;
  const double scale = benchScale();
  std::printf("=== Fig 2: Montage performance (scale %.2f) ===\n", scale);
  const SweepResult sweep = runSweep(App::kMontage, scale);
  const auto series = toSeries(sweep, Metric::kRuntime);
  std::printf("%s\n",
              wfs::analysis::renderTable("Montage runtime", nodeLabels(), series, "seconds")
                  .c_str());

  // Indices into figureSystems(): 0 local, 1 s3, 2 nfs, 3 nufa, 4 dist, 5 pvfs.
  const auto* s3_4 = sweep.cell(1, 4);
  const auto* nfs_1 = sweep.cell(2, 1);
  const auto* nfs_4 = sweep.cell(2, 4);
  const auto* nufa_4 = sweep.cell(3, 4);
  const auto* dist_4 = sweep.cell(4, 4);
  const auto* pvfs_4 = sweep.cell(5, 4);
  const auto* local_1 = sweep.cell(0, 1);

  bool ok = true;
  ok &= shapeCheck("GlusterFS (NUFA) beats NFS at 4 nodes",
                   nufa_4->makespanSeconds < nfs_4->makespanSeconds);
  ok &= shapeCheck("GlusterFS (distribute) beats NFS at 4 nodes",
                   dist_4->makespanSeconds < nfs_4->makespanSeconds);
  ok &= shapeCheck("S3 worse than GlusterFS (NUFA) at 4 nodes",
                   s3_4->makespanSeconds > nufa_4->makespanSeconds);
  ok &= shapeCheck("PVFS worse than GlusterFS (NUFA) at 4 nodes",
                   pvfs_4->makespanSeconds > nufa_4->makespanSeconds);
  ok &= shapeCheck("NFS beats local disk on a single node (async + big RAM)",
                   nfs_1->makespanSeconds < local_1->makespanSeconds);
  return ok ? 0 : 1;
}
