// Ablation A3 (DESIGN.md §3.2): max-min fair sharing vs naive equal split.
//
// A naive model divides each capacity by its flow count independently,
// wasting the share of flows that are bottlenecked elsewhere. Progressive
// filling gives unbottlenecked flows the slack. This harness quantifies
// the difference on a contention pattern typical of an NFS server: one
// slow client plus several fast readers.

#include <cstdio>
#include <vector>

#include "net/flow_network.hpp"
#include "simcore/simulator.hpp"

namespace {

using namespace wfs;

/// One slow flow (through a narrow extra link) and N fast flows sharing a
/// server NIC. Returns the finish time of the last fast flow.
double runScenario(bool modelNarrowLink) {
  sim::Simulator sim;
  net::FlowNetwork net{sim};
  net::Capacity serverNic{net, MBps(100), "server.tx"};
  net::Capacity narrow{net, MBps(5), "slow-client"};
  std::vector<double> finishes(5, -1);
  auto timed = [](sim::Simulator& s, net::FlowNetwork& n, net::Path p, Bytes b,
                  double& out) -> sim::Task<void> {
    co_await n.transfer(std::move(p), b);
    out = s.now().asSeconds();
  };
  // The slow client drags 100 MB through both links.
  net::Path slowPath{{&serverNic, 1.0}};
  if (modelNarrowLink) slowPath.push_back({&narrow, 1.0});
  sim.spawn(timed(sim, net, slowPath, 100_MB, finishes[0]));
  // Four fast clients read 200 MB each.
  for (int i = 1; i < 5; ++i) {
    sim.spawn(timed(sim, net, {{&serverNic, 1.0}}, 200_MB, finishes[i]));
  }
  sim.run();
  double last = 0;
  for (int i = 1; i < 5; ++i) last = std::max(last, finishes[i]);
  return last;
}

}  // namespace

int main() {
  std::printf("=== Ablation A3: max-min fair share vs equal split ===\n");
  // With max-min, the slow client is pinned at 5 MB/s and the fast flows
  // share the remaining 95 MB/s. An equal split would cap everyone at
  // 20 MB/s while the slow client can only use 5 — wasting 15 MB/s.
  const double fair = runScenario(true);
  // Reference: without the narrow link, flows split the NIC evenly; this is
  // what a naive equal-split model would predict for the fast flows.
  const double naiveEstimate = 800.0 / 95.0;  // 4 x 200 MB at 95 MB/s aggregate
  std::printf("  fast-flow completion, max-min model:    %6.2f s\n", fair);
  std::printf("  analytic max-min expectation:           %6.2f s\n", naiveEstimate);
  std::printf("  naive equal-split prediction:           %6.2f s\n",
              200.0 / 20.0 + 600.0 / 95.0);  // first finishes at 10s, then reshare
  const bool ok = fair < 9.0;  // equal split would leave them at ~ >9.4 s
  std::printf("  shape max-min reclaims the slow client's unused share          %s\n",
              ok ? "[PASS]" : "[FAIL]");
  return ok ? 0 : 1;
}
