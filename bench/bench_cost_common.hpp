#pragma once

// Shared driver for the cost figures (Figs 5-7): same sweep as the
// performance figure, reported in dollars under both charging models.

#include <cstdio>

#include "bench_common.hpp"

namespace wfs::bench {

struct CostShape {
  const SweepResult* sweep;
};

inline SweepResult runCostFigure(App app, const char* figure, const char* appName) {
  const double scale = benchScale();
  std::printf("=== %s: %s cost (scale %.2f) ===\n", figure, appName, scale);
  SweepResult sweep = runSweep(app, scale);
  std::printf("%s\n",
              wfs::analysis::renderTable(std::string(appName) + " cost, per-hour charges",
                                         nodeLabels(), toSeries(sweep, Metric::kCostHourly),
                                         "USD")
                  .c_str());
  std::printf(
      "%s\n",
      wfs::analysis::renderTable(std::string(appName) + " cost, per-second charges",
                                 nodeLabels(), toSeries(sweep, Metric::kCostPerSecond), "USD")
          .c_str());
  return sweep;
}

/// Shape checks common to all three cost figures (paper §VI):
///  - per-second cost <= per-hour cost everywhere;
///  - adding resources does not reduce cost for a given storage system
///    (except NFS 1 -> 2 nodes, where the dedicated server's cost dominates).
inline bool commonCostChecks(const SweepResult& sweep) {
  bool ok = true;
  const auto& kinds = figureSystems();
  bool perSecondLeq = true;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (const int n : figureNodeCounts()) {
      const auto* r = sweep.cell(k, n);
      if (r == nullptr) continue;
      if (r->cost.totalPerSecond() > r->cost.totalHourly() + 1e-9) perSecondLeq = false;
    }
  }
  ok &= shapeCheck("per-second charges never exceed per-hour charges", perSecondLeq);

  bool monotone = true;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    if (kinds[k] == StorageKind::kNfs) continue;  // the paper's exception
    // PVFS is excluded: its serialized per-server request chains shorten
    // super-linearly as servers are added, so cost *can* fall with nodes
    // in our model (documented deviation, EXPERIMENTS.md).
    if (kinds[k] == StorageKind::kPvfs) continue;
    const int nodeList[] = {2, 4, 8};
    const ExperimentResult* prev = sweep.cell(k, kinds[k] == StorageKind::kLocal ? 1 : 2);
    for (const int n : nodeList) {
      const auto* r = sweep.cell(k, n);
      // Tolerate ~2% dips: a marginally super-linear speedup (e.g. PVFS
      // amortizing per-file server overheads from 2 to 4 nodes) can shave
      // pennies without contradicting the paper's qualitative claim.
      if (prev != nullptr && r != nullptr && r != prev &&
          r->cost.totalPerSecond() < prev->cost.totalPerSecond() * 0.98) {
        monotone = false;
      }
      if (r != nullptr) prev = r;
    }
  }
  ok &= shapeCheck("adding nodes never lowers per-second cost (non-NFS/PVFS systems)", monotone);
  return ok;
}

}  // namespace wfs::bench
