// Fig 3 reproduction: Epigenome makespan per storage system and cluster
// size.
//
// Paper shape: the application is CPU-bound, so the choice of storage
// system barely matters — all systems land close together, S3 and PVFS
// slightly worse — and the local disk beats NFS on one node (unlike
// Montage). Runtime drops steeply with added nodes.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wfs::bench;
  const double scale = benchScale();
  std::printf("=== Fig 3: Epigenome performance (scale %.2f) ===\n", scale);
  const SweepResult sweep = runSweep(App::kEpigenome, scale);
  const auto series = toSeries(sweep, Metric::kRuntime);
  std::printf(
      "%s\n",
      wfs::analysis::renderTable("Epigenome runtime", nodeLabels(), series, "seconds")
          .c_str());

  const auto* local_1 = sweep.cell(0, 1);
  const auto* s3_1 = sweep.cell(1, 1);
  const auto* nfs_1 = sweep.cell(2, 1);
  const auto* nfs_8 = sweep.cell(2, 8);
  const auto* s3_4 = sweep.cell(1, 4);
  const auto* nfs_4 = sweep.cell(2, 4);
  const auto* nufa_4 = sweep.cell(3, 4);
  const auto* dist_4 = sweep.cell(4, 4);
  const auto* pvfs_4 = sweep.cell(5, 4);

  bool ok = true;
  ok &= shapeCheck("local disk beats NFS on one node (CPU-bound app)",
                   local_1->makespanSeconds < nfs_1->makespanSeconds);
  // Spread between best and worst system at 4 nodes stays narrow (<35 %).
  const double best4 = std::min({s3_4->makespanSeconds, nfs_4->makespanSeconds,
                                 nufa_4->makespanSeconds, dist_4->makespanSeconds,
                                 pvfs_4->makespanSeconds});
  const double worst4 = std::max({s3_4->makespanSeconds, nfs_4->makespanSeconds,
                                  nufa_4->makespanSeconds, dist_4->makespanSeconds,
                                  pvfs_4->makespanSeconds});
  ok &= shapeCheck("storage choice has small impact at 4 nodes (<35% spread)",
                   worst4 / best4 < 1.35);
  ok &= shapeCheck("S3 slightly worse than GlusterFS at 4 nodes",
                   s3_4->makespanSeconds > nufa_4->makespanSeconds);
  ok &= shapeCheck("adding nodes gives near-linear speedup (1 -> 8 nodes > 4x)",
                   s3_1->makespanSeconds / nfs_8->makespanSeconds > 4.0);
  return ok ? 0 : 1;
}
