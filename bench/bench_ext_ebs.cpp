// Extension E2: what if the single-node experiments had used EBS volumes
// instead of ephemeral disks?
//
// The paper's §VIII headline is that the ephemeral-disk first-write penalty
// is "one of the major factors inhibiting storage performance on EC2" and
// "unique to this execution platform". 2010 EBS volumes had no such
// penalty but ran network-attached at much lower throughput and charged
// per-I/O fees. This bench quantifies the trade for each application on
// one node.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wfs::bench;
  const double scale = benchScale();
  std::printf("=== Extension E2: ephemeral RAID-0 vs EBS volume, 1 node (scale %.2f) ===\n",
              scale);

  bool ok = true;
  std::printf("  %-11s %14s %14s %12s\n", "app", "ephemeral [s]", "ebs [s]", "ebs I/O fee");
  double montageLocal = 0, montageEbs = 0, epiLocal = 0, epiEbs = 0;
  double bbLocal = 0, bbEbs = 0;
  for (const App app : {App::kMontage, App::kBroadband, App::kEpigenome}) {
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.workerNodes = 1;
    cfg.appScale = scale;
    cfg.storage = StorageKind::kLocal;
    std::fprintf(stderr, "  running %s / local...\n", toString(app));
    const auto local = wfs::analysis::runExperiment(cfg);
    cfg.storage = StorageKind::kEbs;
    std::fprintf(stderr, "  running %s / ebs...\n", toString(app));
    const auto ebs = wfs::analysis::runExperiment(cfg);
    std::printf("  %-11s %14.0f %14.0f %11.2f$\n", toString(app), local.makespanSeconds,
                ebs.makespanSeconds, ebs.cost.extraFees);
    if (app == App::kMontage) {
      montageLocal = local.makespanSeconds;
      montageEbs = ebs.makespanSeconds;
    }
    if (app == App::kBroadband) {
      bbLocal = local.makespanSeconds;
      bbEbs = ebs.makespanSeconds;
    }
    if (app == App::kEpigenome) {
      epiLocal = local.makespanSeconds;
      epiEbs = ebs.makespanSeconds;
    }
  }

  // The trade cuts both ways: Montage's scattered small-file writes are
  // dominated by the first-write penalty, so penalty-free EBS wins big;
  // Broadband streams gigabytes per task and hits the volume's bandwidth
  // ceiling; CPU-bound Epigenome barely notices the swap. Together these
  // support the paper's §VIII conjecture that the penalty is the platform's
  // major storage handicap — for exactly the workloads it hurt.
  ok &= shapeCheck("EBS beats ephemeral for write-amplified Montage",
                   montageEbs < montageLocal);
  ok &= shapeCheck("ephemeral beats EBS for streaming-heavy Broadband",
                   bbLocal < bbEbs);
  ok &= shapeCheck("CPU-bound Epigenome nearly indifferent to the swap (<25%)",
                   epiEbs < 1.25 * epiLocal);
  return ok ? 0 : 1;
}
