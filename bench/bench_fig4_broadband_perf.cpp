// Fig 4 reproduction: Broadband makespan per storage system and cluster
// size, plus the m2.4xlarge NFS-server variant discussed in §V.C.
//
// Paper shape: S3 is the best overall system (input reuse makes the client
// cache effective); GlusterFS NUFA beats distribute (chained executables
// write and re-read locally); NFS degrades from 2 to 4 nodes and a bigger
// server helps but stays well behind GlusterFS/S3; PVFS is poor (many
// small files).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wfs::bench;
  const double scale = benchScale();
  std::printf("=== Fig 4: Broadband performance (scale %.2f) ===\n", scale);
  const SweepResult sweep = runSweep(App::kBroadband, scale);
  const auto series = toSeries(sweep, Metric::kRuntime);
  std::printf(
      "%s\n",
      wfs::analysis::renderTable("Broadband runtime", nodeLabels(), series, "seconds")
          .c_str());

  // The §V.C experiment: a 64 GB m2.4xlarge NFS server at 4 nodes.
  ExperimentConfig big;
  big.app = App::kBroadband;
  big.storage = StorageKind::kNfs;
  big.workerNodes = 4;
  big.nfsServerType = "m2.4xlarge";
  big.appScale = scale;
  std::fprintf(stderr, "  running broadband / nfs(m2.4xlarge) / 4 nodes...\n");
  const auto bigRes = wfs::analysis::runExperiment(big);
  std::printf("NFS with m2.4xlarge server, 4 nodes: %.0f s (m1.xlarge server: %.0f s)\n\n",
              bigRes.makespanSeconds, sweep.cell(2, 4)->makespanSeconds);

  const auto* s3_4 = sweep.cell(1, 4);
  const auto* nfs_2 = sweep.cell(2, 2);
  const auto* nfs_4 = sweep.cell(2, 4);
  const auto* nufa_4 = sweep.cell(3, 4);
  const auto* dist_4 = sweep.cell(4, 4);
  const auto* pvfs_4 = sweep.cell(5, 4);

  bool ok = true;
  ok &= shapeCheck("S3 best overall at 4 nodes (cache absorbs input reuse)",
                   s3_4->makespanSeconds < nufa_4->makespanSeconds &&
                       s3_4->makespanSeconds < nfs_4->makespanSeconds &&
                       s3_4->makespanSeconds < pvfs_4->makespanSeconds);
  ok &= shapeCheck("GlusterFS NUFA beats distribute (local mini-workflows)",
                   nufa_4->makespanSeconds < dist_4->makespanSeconds);
  ok &= shapeCheck("NFS degrades from 2 to 4 nodes (server bottleneck)",
                   nfs_4->makespanSeconds > nfs_2->makespanSeconds);
  ok &= shapeCheck("bigger NFS server helps at 4 nodes",
                   bigRes.makespanSeconds < nfs_4->makespanSeconds);
  ok &= shapeCheck("bigger NFS server still worse than GlusterFS/S3",
                   bigRes.makespanSeconds > nufa_4->makespanSeconds &&
                       bigRes.makespanSeconds > s3_4->makespanSeconds);
  ok &= shapeCheck("PVFS poor (worse than both GlusterFS modes) at 4 nodes",
                   pvfs_4->makespanSeconds > nufa_4->makespanSeconds &&
                       pvfs_4->makespanSeconds > dist_4->makespanSeconds);
  return ok ? 0 : 1;
}
