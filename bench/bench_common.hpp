#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"

namespace wfs::bench {

using analysis::App;
using analysis::ExperimentConfig;
using analysis::ExperimentResult;
using analysis::Series;
using analysis::StorageKind;

/// The storage systems of Figs 2-7, in the paper's plotting order. Local
/// appears only at one node; GlusterFS/PVFS only from two nodes up.
inline const std::vector<StorageKind>& figureSystems() {
  static const std::vector<StorageKind> kinds{
      StorageKind::kLocal,       StorageKind::kS3,
      StorageKind::kNfs,         StorageKind::kGlusterNufa,
      StorageKind::kGlusterDist, StorageKind::kPvfs,
  };
  return kinds;
}

inline const std::vector<int>& figureNodeCounts() {
  static const std::vector<int> nodes{1, 2, 4, 8};
  return nodes;
}

inline bool validCell(StorageKind kind, int nodes) {
  if (kind == StorageKind::kLocal) return nodes == 1;
  if (kind == StorageKind::kGlusterNufa || kind == StorageKind::kGlusterDist ||
      kind == StorageKind::kPvfs) {
    return nodes >= 2;
  }
  return true;
}

/// Workload scale taken from WFS_BENCH_SCALE (default 1.0 = the published
/// workload). Smaller values shrink the workflows proportionally for quick
/// smoke runs of the harness itself.
inline double benchScale() {
  if (const char* env = std::getenv("WFS_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

/// Sweep worker threads from WFS_BENCH_JOBS (default/<=0 = all hardware
/// threads). Results are byte-identical for any value — cells are isolated
/// simulators merged by grid index.
inline int benchJobs() {
  if (const char* env = std::getenv("WFS_BENCH_JOBS")) return std::atoi(env);
  return 0;
}

struct SweepResult {
  std::map<std::pair<int, int>, ExperimentResult> cells;  // (kindIdx, nodes)

  [[nodiscard]] const ExperimentResult* cell(std::size_t kindIdx, int nodes) const {
    auto it = cells.find({static_cast<int>(kindIdx), nodes});
    return it == cells.end() ? nullptr : &it->second;
  }
};

/// Runs app x {systems} x {node counts} on a SweepRunner pool
/// (WFS_BENCH_JOBS workers); skips invalid cells. Exits the bench on a
/// failed cell — a figure with holes would pass/fail meaninglessly.
inline SweepResult runSweep(App app, double scale) {
  const auto& kinds = figureSystems();
  std::vector<ExperimentConfig> cells;
  std::vector<std::pair<int, int>> keys;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (const int n : figureNodeCounts()) {
      if (!validCell(kinds[k], n)) continue;
      ExperimentConfig cfg;
      cfg.app = app;
      cfg.storage = kinds[k];
      cfg.workerNodes = n;
      cfg.appScale = scale;
      cells.push_back(cfg);
      keys.emplace_back(static_cast<int>(k), n);
    }
  }

  analysis::SweepRunner::Options opt;
  opt.threads = benchJobs();
  opt.progress = [](std::size_t done, std::size_t total,
                    const analysis::SweepCellResult& cell) {
    std::fprintf(stderr, "  [%zu/%zu] %s / %s / %d nodes%s\n", done, total,
                 toString(cell.config.app), toString(cell.config.storage),
                 cell.config.workerNodes, cell.ok ? "" : " FAILED");
  };
  auto results = analysis::SweepRunner{opt}.run(std::move(cells));

  SweepResult out;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok) {
      std::fprintf(stderr, "cell %s failed: %s\n", results[i].label().c_str(),
                   results[i].error.c_str());
      std::exit(1);
    }
    out.cells.emplace(keys[i], std::move(results[i].result));
  }
  return out;
}

enum class Metric { kRuntime, kCostHourly, kCostPerSecond };

inline std::vector<Series> toSeries(const SweepResult& sweep, Metric metric) {
  std::vector<Series> out;
  const auto& kinds = figureSystems();
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    Series s;
    s.label = toString(kinds[k]);
    for (const int n : figureNodeCounts()) {
      const ExperimentResult* r = sweep.cell(k, n);
      if (r == nullptr) {
        s.values.push_back(std::nan(""));
      } else {
        switch (metric) {
          case Metric::kRuntime: s.values.push_back(r->makespanSeconds); break;
          case Metric::kCostHourly: s.values.push_back(r->cost.totalHourly()); break;
          case Metric::kCostPerSecond: s.values.push_back(r->cost.totalPerSecond()); break;
        }
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

inline std::vector<std::string> nodeLabels() {
  std::vector<std::string> out;
  for (const int n : figureNodeCounts()) {
    out.push_back(std::to_string(n) + (n == 1 ? " node" : " nodes"));
  }
  return out;
}

/// Prints PASS/FAIL for a named shape expectation; returns pass.
inline bool shapeCheck(const char* what, bool ok) {
  std::printf("  shape %-66s %s\n", what, ok ? "[PASS]" : "[FAIL]");
  return ok;
}

}  // namespace wfs::bench
