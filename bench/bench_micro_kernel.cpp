// M1: micro-benchmarks of the simulation substrate itself (google-benchmark).
// Not a paper artifact — guards the kernel's event throughput and the flow
// network's recompute cost, which bound how large an experiment we can run.

#include <benchmark/benchmark.h>

#include <memory>

#include <vector>

#include "net/flow_network.hpp"
#include "simcore/resource.hpp"
#include "simcore/simulator.hpp"

namespace {

using namespace wfs;

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule(sim::Duration::micros(i % 1000), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(10000)->Arg(100000);

void BM_CoroutineSpawnResume(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.spawn([](sim::Simulator& s) -> sim::Task<void> {
        co_await s.delay(sim::Duration::micros(1));
        co_await s.delay(sim::Duration::micros(1));
      }(sim));
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineSpawnResume)->Arg(1000)->Arg(10000);

void BM_ResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Resource cores{sim, 8, "cores"};
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.spawn([](sim::Simulator& s, sim::Resource& r) -> sim::Task<void> {
        auto lease = co_await r.scoped(1);
        co_await s.delay(sim::Duration::millis(1));
      }(sim, cores));
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResourceContention)->Arg(1000);

void BM_EventCancelChurn(benchmark::State& state) {
  // Timeout-heavy workload: rounds of far-future timers, most of which are
  // canceled before firing (the retry/IO-timeout pattern). Stresses
  // cancellation bookkeeping — a queue that keeps dead entries until their
  // timestamp arrives accumulates 20x the live set here.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventId> ids(static_cast<std::size_t>(n));
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < n; ++i) {
        ids[static_cast<std::size_t>(i)] =
            sim.schedule(sim::Duration::seconds(3600 + (i * 7 + round) % 97), [] {});
      }
      for (int i = 0; i < n; ++i) {
        if (i % 16 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
      }
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n * 20);
}
BENCHMARK(BM_EventCancelChurn)->Arg(1000)->Arg(10000);

void BM_FlowDisjointChurn(benchmark::State& state) {
  // Many flows over pairwise-disjoint capacity pairs, completing at
  // staggered times. Every completion re-shares; a settlement scoped to the
  // touched connected component pays O(1) per completion instead of
  // O(active flows).
  const int flows = static_cast<int>(state.range(0));
  constexpr int kPairs = 64;
  for (auto _ : state) {
    sim::Simulator sim;
    net::FlowNetwork fn{sim};
    std::vector<std::unique_ptr<net::Capacity>> caps;
    for (int i = 0; i < 2 * kPairs; ++i) {
      caps.push_back(std::make_unique<net::Capacity>(fn, MBps(100), "c"));
    }
    for (int i = 0; i < flows; ++i) {
      const std::size_t pair = static_cast<std::size_t>(i % kPairs);
      net::Path p{{caps[2 * pair].get(), 1.0}, {caps[2 * pair + 1].get(), 1.0}};
      const Bytes bytes = static_cast<Bytes>(i + 1) * 1_MB;
      sim.spawn([](net::FlowNetwork& n, net::Path path, Bytes b) -> sim::Task<void> {
        co_await n.transfer(std::move(path), b);
      }(fn, p, bytes));
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowDisjointChurn)->Arg(256)->Arg(1024);

void BM_FlowNetworkReshare(benchmark::State& state) {
  // Cost of running F concurrent flows over R shared capacities.
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::FlowNetwork fn{sim};
    std::vector<std::unique_ptr<net::Capacity>> caps;
    for (int i = 0; i < 16; ++i) {
      caps.push_back(std::make_unique<net::Capacity>(fn, MBps(100), "c"));
    }
    for (int i = 0; i < flows; ++i) {
      net::Path p{{caps[static_cast<std::size_t>(i) % caps.size()].get(), 1.0},
                  {caps[static_cast<std::size_t>(i + 7) % caps.size()].get(), 1.0}};
      sim.spawn([](net::FlowNetwork& n, net::Path path) -> sim::Task<void> {
        co_await n.transfer(std::move(path), 10_MB);
      }(fn, p));
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowNetworkReshare)->Arg(64)->Arg(256);

void BM_FlowSameTimestampBurst(benchmark::State& state) {
  // The fan-out moment of a workflow stage: N identical transfers admitted
  // at one simulated instant over a small shared capacity set, and (being
  // identical) all completing at one instant too. Same-timestamp settle
  // coalescing folds each burst into a single component recompute; the
  // per-touch oracle pays one recompute per admission and completion.
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::FlowNetwork fn{sim};
    std::vector<std::unique_ptr<net::Capacity>> caps;
    for (int i = 0; i < 8; ++i) {
      caps.push_back(std::make_unique<net::Capacity>(fn, MBps(100), "c"));
    }
    for (int i = 0; i < flows; ++i) {
      net::Path p{{caps[static_cast<std::size_t>(i) % caps.size()].get(), 1.0},
                  {caps[static_cast<std::size_t>(i + 3) % caps.size()].get(), 1.0}};
      sim.spawn([](net::FlowNetwork& n, net::Path path) -> sim::Task<void> {
        co_await n.transfer(std::move(path), 10_MB);
      }(fn, p));
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowSameTimestampBurst)->Arg(64)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
