// Ablation A1 (DESIGN.md §3.3): the ephemeral-disk first-write penalty.
//
// The paper calls the first-write penalty "one of the major factors
// inhibiting storage performance on EC2" and notes it is unique to this
// platform (§VIII). Toggling it off models running the same experiment on
// a cloud without the penalty.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wfs::bench;
  const double scale = benchScale() * 0.5;
  std::printf("=== Ablation A1: first-write penalty on/off (scale %.2f) ===\n", scale);

  ExperimentConfig cfg;
  cfg.app = App::kMontage;
  cfg.storage = StorageKind::kGlusterNufa;
  cfg.workerNodes = 2;
  cfg.appScale = scale;

  cfg.firstWritePenalty = true;
  std::fprintf(stderr, "  running with penalty...\n");
  const auto with = wfs::analysis::runExperiment(cfg);
  cfg.firstWritePenalty = false;
  std::fprintf(stderr, "  running without penalty...\n");
  const auto without = wfs::analysis::runExperiment(cfg);

  std::printf("  with penalty:    %8.0f s\n", with.makespanSeconds);
  std::printf("  without penalty: %8.0f s   (%.0f%% faster)\n", without.makespanSeconds,
              100.0 * (1.0 - without.makespanSeconds / with.makespanSeconds));
  bool ok = shapeCheck("removing the penalty speeds up the I/O-bound workflow",
                       without.makespanSeconds < with.makespanSeconds * 0.97);
  return ok ? 0 : 1;
}
