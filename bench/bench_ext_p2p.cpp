// Extension E1 (paper §VIII future work): "configurations in which files
// can be transferred directly from one computational node to another".
//
// Runs Broadband (whose chained transformations reward locality most) on
// the peer-to-peer option versus the best shared systems, with both the
// paper's locality-blind scheduler and the data-aware one — quantifying
// how much of a shared file system's cost is the sharing machinery itself.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wfs::bench;
  const double scale = benchScale();
  std::printf("=== Extension E1: direct node-to-node transfers (scale %.2f) ===\n", scale);

  ExperimentConfig cfg;
  cfg.app = App::kBroadband;
  cfg.workerNodes = 4;
  cfg.appScale = scale;

  struct Row {
    const char* label;
    StorageKind kind;
    bool dataAware;
  };
  const Row rows[] = {
      {"gluster-nufa", StorageKind::kGlusterNufa, false},
      {"s3", StorageKind::kS3, false},
      {"p2p (blind)", StorageKind::kP2p, false},
      {"p2p (data-aware)", StorageKind::kP2p, true},
  };

  double nufa = 0, s3 = 0, p2pBlind = 0, p2pAware = 0;
  for (const Row& row : rows) {
    cfg.storage = row.kind;
    cfg.dataAwareScheduling = row.dataAware;
    std::fprintf(stderr, "  running %s...\n", row.label);
    const auto r = wfs::analysis::runExperiment(cfg);
    std::printf("  %-18s %8.0f s   local-reads %llu remote %llu\n", row.label,
                r.makespanSeconds,
                static_cast<unsigned long long>(r.storageMetrics.localReads),
                static_cast<unsigned long long>(r.storageMetrics.remoteReads));
    if (row.kind == StorageKind::kGlusterNufa) nufa = r.makespanSeconds;
    if (row.kind == StorageKind::kS3) s3 = r.makespanSeconds;
    if (row.kind == StorageKind::kP2p && !row.dataAware) p2pBlind = r.makespanSeconds;
    if (row.kind == StorageKind::kP2p && row.dataAware) p2pAware = r.makespanSeconds;
  }

  bool ok = true;
  ok &= shapeCheck("p2p is competitive with the best shared system (within 15%)",
                   p2pBlind <= std::min(nufa, s3) * 1.15);
  ok &= shapeCheck("data-aware scheduling helps p2p (or at worst is neutral)",
                   p2pAware <= p2pBlind * 1.02);
  return ok ? 0 : 1;
}
