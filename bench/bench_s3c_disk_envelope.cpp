// §III.C reproduction: the ephemeral-disk / RAID-0 performance envelope.
//
// Paper numbers: first writes ~20 MB/s on one disk; RAID-0 first writes
// 80-100 MB/s and subsequent writes 350-400 MB/s; reads ~110 MB/s single
// disk and ~310 MB/s RAID; zero-initializing 50 GB takes ~42 minutes.

#include <cstdio>

#include "blk/disk.hpp"
#include "blk/raid0.hpp"
#include "net/flow_network.hpp"
#include "simcore/simulator.hpp"

namespace {

using namespace wfs;

double timed(sim::Simulator& sim, sim::Task<void> t) {
  double finish = -1;
  const double t0 = sim.now().asSeconds();
  sim.spawn([](sim::Simulator& s, sim::Task<void> inner, double& out) -> sim::Task<void> {
    co_await std::move(inner);
    out = s.now().asSeconds();
  }(sim, std::move(t), finish));
  sim.run();
  return finish - t0;
}

double mbps(Bytes bytes, double seconds) {
  return static_cast<double>(bytes) / 1e6 / seconds;
}

bool check(const char* what, double value, double lo, double hi) {
  const bool ok = value >= lo && value <= hi;
  std::printf("  %-46s %7.1f MB/s   (paper: %.0f-%.0f)  %s\n", what, value, lo, hi,
              ok ? "[PASS]" : "[FAIL]");
  return ok;
}

}  // namespace

int main() {
  std::printf("=== §III.C: ephemeral disk / RAID-0 envelope ===\n");
  bool ok = true;
  constexpr Bytes kProbe = 2_GB;

  {  // single-disk first write
    sim::Simulator sim;
    net::FlowNetwork net{sim};
    blk::Disk d{net, blk::Disk::Config{}, "d"};
    ok &= check("single disk, first write", mbps(kProbe, timed(sim, d.writeAt(0, kProbe))),
                17, 23);
  }
  {  // single-disk read
    sim::Simulator sim;
    net::FlowNetwork net{sim};
    blk::Disk d{net, blk::Disk::Config{}, "d"};
    d.initializeAll();
    ok &= check("single disk, read", mbps(kProbe, timed(sim, d.read(kProbe))), 100, 120);
  }
  {  // RAID-0 first write
    sim::Simulator sim;
    net::FlowNetwork net{sim};
    blk::Raid0 r{net, blk::Raid0::Config{}, "md0"};
    ok &= check("RAID-0 (4 disks), first write", mbps(kProbe, timed(sim, r.write(kProbe))),
                78, 102);
  }
  {  // RAID-0 subsequent write
    sim::Simulator sim;
    net::FlowNetwork net{sim};
    blk::Raid0 r{net, blk::Raid0::Config{}, "md0"};
    r.initializeAll();
    ok &= check("RAID-0 (4 disks), subsequent write",
                mbps(kProbe, timed(sim, r.write(kProbe))), 350, 400);
  }
  {  // RAID-0 read
    sim::Simulator sim;
    net::FlowNetwork net{sim};
    blk::Raid0 r{net, blk::Raid0::Config{}, "md0"};
    r.initializeAll();
    ok &= check("RAID-0 (4 disks), read", mbps(kProbe, timed(sim, r.read(kProbe))), 290,
                320);
  }
  {  // 50 GB zero-init
    sim::Simulator sim;
    net::FlowNetwork net{sim};
    blk::Disk d{net, blk::Disk::Config{}, "d"};
    const double minutes = timed(sim, d.writeAt(0, 50_GB)) / 60.0;
    const bool inRange = minutes > 38 && minutes < 46;
    std::printf("  %-46s %7.1f min    (paper: ~42)     %s\n",
                "zero-initialize 50 GB (one device)", minutes, inRange ? "[PASS]" : "[FAIL]");
    ok &= inRange;
  }
  return ok ? 0 : 1;
}
