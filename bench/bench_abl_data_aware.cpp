// Ablation A2 (DESIGN.md §3.5, paper §IV.A): data-aware scheduling on S3.
//
// The paper: "A more data-aware scheduler could potentially improve
// workflow performance by increasing cache hits and further reducing
// transfers." We run Broadband on S3 with the locality-blind scheduler and
// with a locality-ranking one, comparing cache hit rates and makespan.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace wfs::bench;
  const double scale = benchScale();
  std::printf("=== Ablation A2: locality-blind vs data-aware scheduling (scale %.2f) ===\n",
              scale);

  ExperimentConfig cfg;
  cfg.app = App::kBroadband;
  cfg.storage = StorageKind::kS3;
  cfg.workerNodes = 4;
  cfg.appScale = scale;

  cfg.dataAwareScheduling = false;
  std::fprintf(stderr, "  running locality-blind...\n");
  const auto blind = wfs::analysis::runExperiment(cfg);
  cfg.dataAwareScheduling = true;
  std::fprintf(stderr, "  running data-aware...\n");
  const auto aware = wfs::analysis::runExperiment(cfg);

  std::printf("  locality-blind: %8.0f s, cache hit rate %.2f, GETs %llu\n",
              blind.makespanSeconds, blind.storageMetrics.cacheHitRate(),
              static_cast<unsigned long long>(blind.storageMetrics.getRequests));
  std::printf("  data-aware:     %8.0f s, cache hit rate %.2f, GETs %llu\n",
              aware.makespanSeconds, aware.storageMetrics.cacheHitRate(),
              static_cast<unsigned long long>(aware.storageMetrics.getRequests));

  bool ok = shapeCheck("data-aware scheduling increases the S3 cache hit rate",
                       aware.storageMetrics.cacheHitRate() >=
                           blind.storageMetrics.cacheHitRate());
  ok &= shapeCheck("data-aware scheduling does not hurt makespan (>3% regression)",
                   aware.makespanSeconds <= blind.makespanSeconds * 1.03);
  return ok ? 0 : 1;
}
