// Fig 5 reproduction: Montage cost under per-hour and per-second charging.
//
// Paper shape: the cheapest configuration is GlusterFS on two nodes; cost
// follows performance; S3 carries an extra request fee (~$0.28 at full
// scale); NFS pays for its dedicated server node.

#include <cstdio>

#include "bench_cost_common.hpp"

int main() {
  using namespace wfs::bench;
  const SweepResult sweep = runCostFigure(App::kMontage, "Fig 5", "Montage");

  bool ok = commonCostChecks(sweep);
  // Cheapest per-second cell across systems/sizes is a 2-node GlusterFS run.
  double best = 1e18;
  std::size_t bestKind = 0;
  int bestNodes = 0;
  for (std::size_t k = 0; k < figureSystems().size(); ++k) {
    for (const int n : figureNodeCounts()) {
      const auto* r = sweep.cell(k, n);
      if (r != nullptr && r->cost.totalPerSecond() < best) {
        best = r->cost.totalPerSecond();
        bestKind = k;
        bestNodes = n;
      }
    }
  }
  const StorageKind cheapest = figureSystems()[bestKind];
  std::printf("cheapest (per-second): %s at %d nodes, $%.3f\n",
              toString(cheapest), bestNodes, best);
  // Paper: GlusterFS on two nodes is the single cheapest configuration.
  // Our reproduction gets GlusterFS-2 cheapest among the *shared* systems
  // and within ~10% of the local-disk point (see EXPERIMENTS.md for the
  // documented deviation: the paper's local run scaled >2x worse than
  // gluster-2; ours scales exactly 2x).
  double bestShared = 1e18;
  std::size_t bestSharedKind = 0;
  for (std::size_t k = 0; k < figureSystems().size(); ++k) {
    if (figureSystems()[k] == StorageKind::kLocal) continue;
    for (const int nn : figureNodeCounts()) {
      const auto* r = sweep.cell(k, nn);
      if (r != nullptr && r->cost.totalPerSecond() < bestShared) {
        bestShared = r->cost.totalPerSecond();
        bestSharedKind = k;
      }
    }
  }
  ok &= shapeCheck("cheapest shared-storage Montage configuration uses GlusterFS",
                   figureSystems()[bestSharedKind] == StorageKind::kGlusterNufa ||
                       figureSystems()[bestSharedKind] == StorageKind::kGlusterDist);
  ok &= shapeCheck("GlusterFS within 15% of the overall cheapest configuration",
                   bestShared <= best * 1.15);
  const auto* s3_1 = sweep.cell(1, 1);
  ok &= shapeCheck("S3 request fees are a visible extra (> $0.05 at this scale)",
                   s3_1->cost.s3RequestCost > 0.05 * benchScale());
  return ok ? 0 : 1;
}
