// Fig 6 reproduction: Epigenome cost under both charging models.
//
// Paper shape: the cheapest configuration is a single node with the local
// disk; the spread between storage systems is small because the
// application is CPU-bound.

#include <algorithm>
#include <cstdio>

#include "bench_cost_common.hpp"

int main() {
  using namespace wfs::bench;
  const SweepResult sweep = runCostFigure(App::kEpigenome, "Fig 6", "Epigenome");

  bool ok = commonCostChecks(sweep);
  double best = 1e18;
  std::size_t bestKind = 0;
  int bestNodes = 0;
  for (std::size_t k = 0; k < figureSystems().size(); ++k) {
    for (const int n : figureNodeCounts()) {
      const auto* r = sweep.cell(k, n);
      if (r != nullptr && r->cost.totalPerSecond() < best) {
        best = r->cost.totalPerSecond();
        bestKind = k;
        bestNodes = n;
      }
    }
  }
  std::printf("cheapest (per-second): %s at %d nodes, $%.3f\n",
              toString(figureSystems()[bestKind]), bestNodes, best);
  ok &= shapeCheck("cheapest Epigenome configuration is local disk on one node",
                   figureSystems()[bestKind] == StorageKind::kLocal && bestNodes == 1);

  // Small cost spread between storage options at 4 nodes (CPU-bound).
  const double s3 = sweep.cell(1, 4)->cost.totalPerSecond();
  const double nfsNoServer =
      sweep.cell(2, 4)->cost.totalPerSecond();  // includes the extra node
  const double nufa = sweep.cell(3, 4)->cost.totalPerSecond();
  const double dist = sweep.cell(4, 4)->cost.totalPerSecond();
  const double pvfs = sweep.cell(5, 4)->cost.totalPerSecond();
  const double lo = std::min({s3, nufa, dist, pvfs});
  const double hi = std::max({s3, nufa, dist, pvfs});
  ok &= shapeCheck("cost spread between systems is small at 4 nodes (<35%)",
                   hi / lo < 1.35);
  ok &= shapeCheck("NFS costs more than GlusterFS at 4 nodes (extra node)",
                   nfsNoServer > nufa);
  return ok ? 0 : 1;
}
