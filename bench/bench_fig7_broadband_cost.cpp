// Fig 7 reproduction: Broadband cost under both charging models.
//
// Paper shape: local disk, GlusterFS and S3 roughly tie for the lowest
// cost; NFS is the costliest path (extra server node + poor scaling);
// the only cells where adding nodes lowers cost are NFS 1 -> 2 (the
// dedicated server's share of the bill shrinks).

#include <algorithm>
#include <cstdio>

#include "bench_cost_common.hpp"

int main() {
  using namespace wfs::bench;
  const SweepResult sweep = runCostFigure(App::kBroadband, "Fig 7", "Broadband");

  bool ok = commonCostChecks(sweep);

  const double local1 = sweep.cell(0, 1)->cost.totalPerSecond();
  const double s3best =
      std::min({sweep.cell(1, 1)->cost.totalPerSecond(),
                sweep.cell(1, 2)->cost.totalPerSecond(),
                sweep.cell(1, 4)->cost.totalPerSecond()});
  const double nufaBest = std::min({sweep.cell(3, 2)->cost.totalPerSecond(),
                                    sweep.cell(3, 4)->cost.totalPerSecond()});
  const double nfsBest =
      std::min({sweep.cell(2, 1)->cost.totalPerSecond(),
                sweep.cell(2, 2)->cost.totalPerSecond(),
                sweep.cell(2, 4)->cost.totalPerSecond()});
  std::printf("best per-second: local=%.3f s3=%.3f gluster-nufa=%.3f nfs=%.3f\n", local1,
              s3best, nufaBest, nfsBest);
  const double tieLo = std::min({local1, s3best, nufaBest});
  const double tieHi = std::max({local1, s3best, nufaBest});
  bool okTie = tieHi / tieLo < 1.4;
  ok &= shapeCheck("local, GlusterFS and S3 roughly tie for lowest cost", okTie);
  ok &= shapeCheck("NFS is more expensive than the tie group", nfsBest > tieHi * 0.99);

  // NFS 1 -> 2 nodes is the paper's cost-reduction exception.
  const double nfs1 = sweep.cell(2, 1)->cost.totalPerSecond();
  const double nfs2 = sweep.cell(2, 2)->cost.totalPerSecond();
  ok &= shapeCheck("NFS cost drops from 1 to 2 nodes (server cost amortized)",
                   nfs2 < nfs1);
  return ok ? 0 : 1;
}
