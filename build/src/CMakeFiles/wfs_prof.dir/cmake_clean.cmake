file(REMOVE_RECURSE
  "CMakeFiles/wfs_prof.dir/prof/wfprof.cpp.o"
  "CMakeFiles/wfs_prof.dir/prof/wfprof.cpp.o.d"
  "libwfs_prof.a"
  "libwfs_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
