file(REMOVE_RECURSE
  "libwfs_prof.a"
)
