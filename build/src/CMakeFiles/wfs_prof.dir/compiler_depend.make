# Empty compiler generated dependencies file for wfs_prof.
# This may be replaced when dependencies are built.
