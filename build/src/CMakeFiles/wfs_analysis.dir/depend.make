# Empty dependencies file for wfs_analysis.
# This may be replaced when dependencies are built.
