file(REMOVE_RECURSE
  "CMakeFiles/wfs_analysis.dir/analysis/experiment.cpp.o"
  "CMakeFiles/wfs_analysis.dir/analysis/experiment.cpp.o.d"
  "CMakeFiles/wfs_analysis.dir/analysis/export.cpp.o"
  "CMakeFiles/wfs_analysis.dir/analysis/export.cpp.o.d"
  "CMakeFiles/wfs_analysis.dir/analysis/repeat.cpp.o"
  "CMakeFiles/wfs_analysis.dir/analysis/repeat.cpp.o.d"
  "CMakeFiles/wfs_analysis.dir/analysis/report.cpp.o"
  "CMakeFiles/wfs_analysis.dir/analysis/report.cpp.o.d"
  "libwfs_analysis.a"
  "libwfs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
