file(REMOVE_RECURSE
  "libwfs_analysis.a"
)
