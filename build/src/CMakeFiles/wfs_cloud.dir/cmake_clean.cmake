file(REMOVE_RECURSE
  "CMakeFiles/wfs_cloud.dir/cloud/billing.cpp.o"
  "CMakeFiles/wfs_cloud.dir/cloud/billing.cpp.o.d"
  "CMakeFiles/wfs_cloud.dir/cloud/context_broker.cpp.o"
  "CMakeFiles/wfs_cloud.dir/cloud/context_broker.cpp.o.d"
  "CMakeFiles/wfs_cloud.dir/cloud/instance_types.cpp.o"
  "CMakeFiles/wfs_cloud.dir/cloud/instance_types.cpp.o.d"
  "CMakeFiles/wfs_cloud.dir/cloud/pricing.cpp.o"
  "CMakeFiles/wfs_cloud.dir/cloud/pricing.cpp.o.d"
  "CMakeFiles/wfs_cloud.dir/cloud/provisioner.cpp.o"
  "CMakeFiles/wfs_cloud.dir/cloud/provisioner.cpp.o.d"
  "CMakeFiles/wfs_cloud.dir/cloud/vm.cpp.o"
  "CMakeFiles/wfs_cloud.dir/cloud/vm.cpp.o.d"
  "libwfs_cloud.a"
  "libwfs_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
