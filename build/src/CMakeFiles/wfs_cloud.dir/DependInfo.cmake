
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cpp" "src/CMakeFiles/wfs_cloud.dir/cloud/billing.cpp.o" "gcc" "src/CMakeFiles/wfs_cloud.dir/cloud/billing.cpp.o.d"
  "/root/repo/src/cloud/context_broker.cpp" "src/CMakeFiles/wfs_cloud.dir/cloud/context_broker.cpp.o" "gcc" "src/CMakeFiles/wfs_cloud.dir/cloud/context_broker.cpp.o.d"
  "/root/repo/src/cloud/instance_types.cpp" "src/CMakeFiles/wfs_cloud.dir/cloud/instance_types.cpp.o" "gcc" "src/CMakeFiles/wfs_cloud.dir/cloud/instance_types.cpp.o.d"
  "/root/repo/src/cloud/pricing.cpp" "src/CMakeFiles/wfs_cloud.dir/cloud/pricing.cpp.o" "gcc" "src/CMakeFiles/wfs_cloud.dir/cloud/pricing.cpp.o.d"
  "/root/repo/src/cloud/provisioner.cpp" "src/CMakeFiles/wfs_cloud.dir/cloud/provisioner.cpp.o" "gcc" "src/CMakeFiles/wfs_cloud.dir/cloud/provisioner.cpp.o.d"
  "/root/repo/src/cloud/vm.cpp" "src/CMakeFiles/wfs_cloud.dir/cloud/vm.cpp.o" "gcc" "src/CMakeFiles/wfs_cloud.dir/cloud/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
