# Empty compiler generated dependencies file for wfs_cloud.
# This may be replaced when dependencies are built.
