file(REMOVE_RECURSE
  "libwfs_cloud.a"
)
