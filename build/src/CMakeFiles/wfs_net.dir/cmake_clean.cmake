file(REMOVE_RECURSE
  "CMakeFiles/wfs_net.dir/net/fabric.cpp.o"
  "CMakeFiles/wfs_net.dir/net/fabric.cpp.o.d"
  "CMakeFiles/wfs_net.dir/net/flow_network.cpp.o"
  "CMakeFiles/wfs_net.dir/net/flow_network.cpp.o.d"
  "CMakeFiles/wfs_net.dir/net/nic.cpp.o"
  "CMakeFiles/wfs_net.dir/net/nic.cpp.o.d"
  "libwfs_net.a"
  "libwfs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
