# Empty compiler generated dependencies file for wfs_net.
# This may be replaced when dependencies are built.
