file(REMOVE_RECURSE
  "libwfs_net.a"
)
