file(REMOVE_RECURSE
  "libwfs_wf.a"
)
