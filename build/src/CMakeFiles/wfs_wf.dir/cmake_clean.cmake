file(REMOVE_RECURSE
  "CMakeFiles/wfs_wf.dir/wf/abstract_workflow.cpp.o"
  "CMakeFiles/wfs_wf.dir/wf/abstract_workflow.cpp.o.d"
  "CMakeFiles/wfs_wf.dir/wf/catalogs.cpp.o"
  "CMakeFiles/wfs_wf.dir/wf/catalogs.cpp.o.d"
  "CMakeFiles/wfs_wf.dir/wf/dag.cpp.o"
  "CMakeFiles/wfs_wf.dir/wf/dag.cpp.o.d"
  "CMakeFiles/wfs_wf.dir/wf/engine.cpp.o"
  "CMakeFiles/wfs_wf.dir/wf/engine.cpp.o.d"
  "CMakeFiles/wfs_wf.dir/wf/planner.cpp.o"
  "CMakeFiles/wfs_wf.dir/wf/planner.cpp.o.d"
  "CMakeFiles/wfs_wf.dir/wf/scheduler.cpp.o"
  "CMakeFiles/wfs_wf.dir/wf/scheduler.cpp.o.d"
  "libwfs_wf.a"
  "libwfs_wf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_wf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
