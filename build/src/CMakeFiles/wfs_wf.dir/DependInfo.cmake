
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wf/abstract_workflow.cpp" "src/CMakeFiles/wfs_wf.dir/wf/abstract_workflow.cpp.o" "gcc" "src/CMakeFiles/wfs_wf.dir/wf/abstract_workflow.cpp.o.d"
  "/root/repo/src/wf/catalogs.cpp" "src/CMakeFiles/wfs_wf.dir/wf/catalogs.cpp.o" "gcc" "src/CMakeFiles/wfs_wf.dir/wf/catalogs.cpp.o.d"
  "/root/repo/src/wf/dag.cpp" "src/CMakeFiles/wfs_wf.dir/wf/dag.cpp.o" "gcc" "src/CMakeFiles/wfs_wf.dir/wf/dag.cpp.o.d"
  "/root/repo/src/wf/engine.cpp" "src/CMakeFiles/wfs_wf.dir/wf/engine.cpp.o" "gcc" "src/CMakeFiles/wfs_wf.dir/wf/engine.cpp.o.d"
  "/root/repo/src/wf/planner.cpp" "src/CMakeFiles/wfs_wf.dir/wf/planner.cpp.o" "gcc" "src/CMakeFiles/wfs_wf.dir/wf/planner.cpp.o.d"
  "/root/repo/src/wf/scheduler.cpp" "src/CMakeFiles/wfs_wf.dir/wf/scheduler.cpp.o" "gcc" "src/CMakeFiles/wfs_wf.dir/wf/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfs_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
