# Empty dependencies file for wfs_wf.
# This may be replaced when dependencies are built.
