# Empty compiler generated dependencies file for wfs_apps.
# This may be replaced when dependencies are built.
