file(REMOVE_RECURSE
  "CMakeFiles/wfs_apps.dir/apps/broadband.cpp.o"
  "CMakeFiles/wfs_apps.dir/apps/broadband.cpp.o.d"
  "CMakeFiles/wfs_apps.dir/apps/epigenome.cpp.o"
  "CMakeFiles/wfs_apps.dir/apps/epigenome.cpp.o.d"
  "CMakeFiles/wfs_apps.dir/apps/montage.cpp.o"
  "CMakeFiles/wfs_apps.dir/apps/montage.cpp.o.d"
  "libwfs_apps.a"
  "libwfs_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
