file(REMOVE_RECURSE
  "libwfs_apps.a"
)
