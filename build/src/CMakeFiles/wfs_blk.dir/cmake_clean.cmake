file(REMOVE_RECURSE
  "CMakeFiles/wfs_blk.dir/blk/disk.cpp.o"
  "CMakeFiles/wfs_blk.dir/blk/disk.cpp.o.d"
  "CMakeFiles/wfs_blk.dir/blk/extent_set.cpp.o"
  "CMakeFiles/wfs_blk.dir/blk/extent_set.cpp.o.d"
  "CMakeFiles/wfs_blk.dir/blk/raid0.cpp.o"
  "CMakeFiles/wfs_blk.dir/blk/raid0.cpp.o.d"
  "libwfs_blk.a"
  "libwfs_blk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_blk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
