# Empty compiler generated dependencies file for wfs_blk.
# This may be replaced when dependencies are built.
