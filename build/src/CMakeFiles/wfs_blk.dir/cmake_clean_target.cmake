file(REMOVE_RECURSE
  "libwfs_blk.a"
)
