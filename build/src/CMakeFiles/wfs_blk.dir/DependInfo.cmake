
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blk/disk.cpp" "src/CMakeFiles/wfs_blk.dir/blk/disk.cpp.o" "gcc" "src/CMakeFiles/wfs_blk.dir/blk/disk.cpp.o.d"
  "/root/repo/src/blk/extent_set.cpp" "src/CMakeFiles/wfs_blk.dir/blk/extent_set.cpp.o" "gcc" "src/CMakeFiles/wfs_blk.dir/blk/extent_set.cpp.o.d"
  "/root/repo/src/blk/raid0.cpp" "src/CMakeFiles/wfs_blk.dir/blk/raid0.cpp.o" "gcc" "src/CMakeFiles/wfs_blk.dir/blk/raid0.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
