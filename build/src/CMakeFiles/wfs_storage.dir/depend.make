# Empty dependencies file for wfs_storage.
# This may be replaced when dependencies are built.
