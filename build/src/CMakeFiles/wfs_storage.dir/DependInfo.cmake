
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/base/lru_cache.cpp" "src/CMakeFiles/wfs_storage.dir/storage/base/lru_cache.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/base/lru_cache.cpp.o.d"
  "/root/repo/src/storage/base/metrics.cpp" "src/CMakeFiles/wfs_storage.dir/storage/base/metrics.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/base/metrics.cpp.o.d"
  "/root/repo/src/storage/base/node_scratch.cpp" "src/CMakeFiles/wfs_storage.dir/storage/base/node_scratch.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/base/node_scratch.cpp.o.d"
  "/root/repo/src/storage/base/path.cpp" "src/CMakeFiles/wfs_storage.dir/storage/base/path.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/base/path.cpp.o.d"
  "/root/repo/src/storage/base/storage_system.cpp" "src/CMakeFiles/wfs_storage.dir/storage/base/storage_system.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/base/storage_system.cpp.o.d"
  "/root/repo/src/storage/base/wb_cache.cpp" "src/CMakeFiles/wfs_storage.dir/storage/base/wb_cache.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/base/wb_cache.cpp.o.d"
  "/root/repo/src/storage/ebs/ebs_fs.cpp" "src/CMakeFiles/wfs_storage.dir/storage/ebs/ebs_fs.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/ebs/ebs_fs.cpp.o.d"
  "/root/repo/src/storage/gluster/gluster_fs.cpp" "src/CMakeFiles/wfs_storage.dir/storage/gluster/gluster_fs.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/gluster/gluster_fs.cpp.o.d"
  "/root/repo/src/storage/gluster/layouts.cpp" "src/CMakeFiles/wfs_storage.dir/storage/gluster/layouts.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/gluster/layouts.cpp.o.d"
  "/root/repo/src/storage/gluster/translator.cpp" "src/CMakeFiles/wfs_storage.dir/storage/gluster/translator.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/gluster/translator.cpp.o.d"
  "/root/repo/src/storage/gluster/xlator.cpp" "src/CMakeFiles/wfs_storage.dir/storage/gluster/xlator.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/gluster/xlator.cpp.o.d"
  "/root/repo/src/storage/local/local_fs.cpp" "src/CMakeFiles/wfs_storage.dir/storage/local/local_fs.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/local/local_fs.cpp.o.d"
  "/root/repo/src/storage/nfs/nfs_fs.cpp" "src/CMakeFiles/wfs_storage.dir/storage/nfs/nfs_fs.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/nfs/nfs_fs.cpp.o.d"
  "/root/repo/src/storage/nfs/nfs_server.cpp" "src/CMakeFiles/wfs_storage.dir/storage/nfs/nfs_server.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/nfs/nfs_server.cpp.o.d"
  "/root/repo/src/storage/p2p/p2p_fs.cpp" "src/CMakeFiles/wfs_storage.dir/storage/p2p/p2p_fs.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/p2p/p2p_fs.cpp.o.d"
  "/root/repo/src/storage/pvfs/pvfs_fs.cpp" "src/CMakeFiles/wfs_storage.dir/storage/pvfs/pvfs_fs.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/pvfs/pvfs_fs.cpp.o.d"
  "/root/repo/src/storage/s3/object_store.cpp" "src/CMakeFiles/wfs_storage.dir/storage/s3/object_store.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/s3/object_store.cpp.o.d"
  "/root/repo/src/storage/s3/s3_client.cpp" "src/CMakeFiles/wfs_storage.dir/storage/s3/s3_client.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/s3/s3_client.cpp.o.d"
  "/root/repo/src/storage/s3/s3_fs.cpp" "src/CMakeFiles/wfs_storage.dir/storage/s3/s3_fs.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/s3/s3_fs.cpp.o.d"
  "/root/repo/src/storage/xtreemfs/xtreem_fs.cpp" "src/CMakeFiles/wfs_storage.dir/storage/xtreemfs/xtreem_fs.cpp.o" "gcc" "src/CMakeFiles/wfs_storage.dir/storage/xtreemfs/xtreem_fs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfs_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
