file(REMOVE_RECURSE
  "libwfs_storage.a"
)
