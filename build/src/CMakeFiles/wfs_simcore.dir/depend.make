# Empty dependencies file for wfs_simcore.
# This may be replaced when dependencies are built.
