
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/event_queue.cpp" "src/CMakeFiles/wfs_simcore.dir/simcore/event_queue.cpp.o" "gcc" "src/CMakeFiles/wfs_simcore.dir/simcore/event_queue.cpp.o.d"
  "/root/repo/src/simcore/resource.cpp" "src/CMakeFiles/wfs_simcore.dir/simcore/resource.cpp.o" "gcc" "src/CMakeFiles/wfs_simcore.dir/simcore/resource.cpp.o.d"
  "/root/repo/src/simcore/rng.cpp" "src/CMakeFiles/wfs_simcore.dir/simcore/rng.cpp.o" "gcc" "src/CMakeFiles/wfs_simcore.dir/simcore/rng.cpp.o.d"
  "/root/repo/src/simcore/simulator.cpp" "src/CMakeFiles/wfs_simcore.dir/simcore/simulator.cpp.o" "gcc" "src/CMakeFiles/wfs_simcore.dir/simcore/simulator.cpp.o.d"
  "/root/repo/src/simcore/trace.cpp" "src/CMakeFiles/wfs_simcore.dir/simcore/trace.cpp.o" "gcc" "src/CMakeFiles/wfs_simcore.dir/simcore/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
