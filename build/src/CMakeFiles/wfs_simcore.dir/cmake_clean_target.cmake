file(REMOVE_RECURSE
  "libwfs_simcore.a"
)
