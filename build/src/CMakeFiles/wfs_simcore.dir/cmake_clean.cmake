file(REMOVE_RECURSE
  "CMakeFiles/wfs_simcore.dir/simcore/event_queue.cpp.o"
  "CMakeFiles/wfs_simcore.dir/simcore/event_queue.cpp.o.d"
  "CMakeFiles/wfs_simcore.dir/simcore/resource.cpp.o"
  "CMakeFiles/wfs_simcore.dir/simcore/resource.cpp.o.d"
  "CMakeFiles/wfs_simcore.dir/simcore/rng.cpp.o"
  "CMakeFiles/wfs_simcore.dir/simcore/rng.cpp.o.d"
  "CMakeFiles/wfs_simcore.dir/simcore/simulator.cpp.o"
  "CMakeFiles/wfs_simcore.dir/simcore/simulator.cpp.o.d"
  "CMakeFiles/wfs_simcore.dir/simcore/trace.cpp.o"
  "CMakeFiles/wfs_simcore.dir/simcore/trace.cpp.o.d"
  "libwfs_simcore.a"
  "libwfs_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
