file(REMOVE_RECURSE
  "CMakeFiles/test_wf.dir/wf/dag_property_test.cpp.o"
  "CMakeFiles/test_wf.dir/wf/dag_property_test.cpp.o.d"
  "CMakeFiles/test_wf.dir/wf/dag_test.cpp.o"
  "CMakeFiles/test_wf.dir/wf/dag_test.cpp.o.d"
  "CMakeFiles/test_wf.dir/wf/retry_test.cpp.o"
  "CMakeFiles/test_wf.dir/wf/retry_test.cpp.o.d"
  "CMakeFiles/test_wf.dir/wf/scheduler_edge_test.cpp.o"
  "CMakeFiles/test_wf.dir/wf/scheduler_edge_test.cpp.o.d"
  "CMakeFiles/test_wf.dir/wf/scheduler_engine_test.cpp.o"
  "CMakeFiles/test_wf.dir/wf/scheduler_engine_test.cpp.o.d"
  "test_wf"
  "test_wf.pdb"
  "test_wf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
