file(REMOVE_RECURSE
  "CMakeFiles/test_blk.dir/blk/disk_test.cpp.o"
  "CMakeFiles/test_blk.dir/blk/disk_test.cpp.o.d"
  "CMakeFiles/test_blk.dir/blk/extent_set_test.cpp.o"
  "CMakeFiles/test_blk.dir/blk/extent_set_test.cpp.o.d"
  "test_blk"
  "test_blk.pdb"
  "test_blk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
