file(REMOVE_RECURSE
  "CMakeFiles/test_storage.dir/storage/backends_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/backends_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/base_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/base_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/ebs_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/ebs_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/layouts_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/layouts_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/p2p_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/p2p_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/s3_object_store_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/s3_object_store_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/xlator_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/xlator_test.cpp.o.d"
  "test_storage"
  "test_storage.pdb"
  "test_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
