# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_blk[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_cloud[1]_include.cmake")
include("/root/repo/build/tests/test_wf[1]_include.cmake")
include("/root/repo/build/tests/test_prof[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
