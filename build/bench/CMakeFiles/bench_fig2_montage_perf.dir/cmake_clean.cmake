file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_montage_perf.dir/bench_fig2_montage_perf.cpp.o"
  "CMakeFiles/bench_fig2_montage_perf.dir/bench_fig2_montage_perf.cpp.o.d"
  "bench_fig2_montage_perf"
  "bench_fig2_montage_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_montage_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
