# Empty dependencies file for bench_fig2_montage_perf.
# This may be replaced when dependencies are built.
