file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ebs.dir/bench_ext_ebs.cpp.o"
  "CMakeFiles/bench_ext_ebs.dir/bench_ext_ebs.cpp.o.d"
  "bench_ext_ebs"
  "bench_ext_ebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
