# Empty compiler generated dependencies file for bench_ext_ebs.
# This may be replaced when dependencies are built.
