file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_broadband_perf.dir/bench_fig4_broadband_perf.cpp.o"
  "CMakeFiles/bench_fig4_broadband_perf.dir/bench_fig4_broadband_perf.cpp.o.d"
  "bench_fig4_broadband_perf"
  "bench_fig4_broadband_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_broadband_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
