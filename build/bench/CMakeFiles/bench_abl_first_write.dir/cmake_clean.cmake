file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_first_write.dir/bench_abl_first_write.cpp.o"
  "CMakeFiles/bench_abl_first_write.dir/bench_abl_first_write.cpp.o.d"
  "bench_abl_first_write"
  "bench_abl_first_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_first_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
