# Empty compiler generated dependencies file for bench_abl_first_write.
# This may be replaced when dependencies are built.
