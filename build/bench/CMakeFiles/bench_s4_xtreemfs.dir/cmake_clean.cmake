file(REMOVE_RECURSE
  "CMakeFiles/bench_s4_xtreemfs.dir/bench_s4_xtreemfs.cpp.o"
  "CMakeFiles/bench_s4_xtreemfs.dir/bench_s4_xtreemfs.cpp.o.d"
  "bench_s4_xtreemfs"
  "bench_s4_xtreemfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s4_xtreemfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
