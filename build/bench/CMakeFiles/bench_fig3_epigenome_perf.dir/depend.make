# Empty dependencies file for bench_fig3_epigenome_perf.
# This may be replaced when dependencies are built.
