# Empty compiler generated dependencies file for bench_abl_data_aware.
# This may be replaced when dependencies are built.
