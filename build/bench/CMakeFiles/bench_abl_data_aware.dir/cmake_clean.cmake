file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_data_aware.dir/bench_abl_data_aware.cpp.o"
  "CMakeFiles/bench_abl_data_aware.dir/bench_abl_data_aware.cpp.o.d"
  "bench_abl_data_aware"
  "bench_abl_data_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_data_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
