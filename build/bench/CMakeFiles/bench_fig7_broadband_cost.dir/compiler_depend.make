# Empty compiler generated dependencies file for bench_fig7_broadband_cost.
# This may be replaced when dependencies are built.
