file(REMOVE_RECURSE
  "CMakeFiles/bench_s3c_disk_envelope.dir/bench_s3c_disk_envelope.cpp.o"
  "CMakeFiles/bench_s3c_disk_envelope.dir/bench_s3c_disk_envelope.cpp.o.d"
  "bench_s3c_disk_envelope"
  "bench_s3c_disk_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s3c_disk_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
