# Empty dependencies file for bench_s3c_disk_envelope.
# This may be replaced when dependencies are built.
