# Empty dependencies file for bench_abl_fairshare.
# This may be replaced when dependencies are built.
