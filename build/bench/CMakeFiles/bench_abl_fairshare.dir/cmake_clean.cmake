file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_fairshare.dir/bench_abl_fairshare.cpp.o"
  "CMakeFiles/bench_abl_fairshare.dir/bench_abl_fairshare.cpp.o.d"
  "bench_abl_fairshare"
  "bench_abl_fairshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_fairshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
