
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_montage_cost.cpp" "bench/CMakeFiles/bench_fig5_montage_cost.dir/bench_fig5_montage_cost.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_montage_cost.dir/bench_fig5_montage_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wfs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_wf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wfs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
