file(REMOVE_RECURSE
  "CMakeFiles/wfsim.dir/wfsim.cpp.o"
  "CMakeFiles/wfsim.dir/wfsim.cpp.o.d"
  "wfsim"
  "wfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
