# Empty dependencies file for wfsim.
# This may be replaced when dependencies are built.
