file(REMOVE_RECURSE
  "CMakeFiles/cost_planner.dir/cost_planner.cpp.o"
  "CMakeFiles/cost_planner.dir/cost_planner.cpp.o.d"
  "cost_planner"
  "cost_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
