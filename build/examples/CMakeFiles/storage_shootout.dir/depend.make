# Empty dependencies file for storage_shootout.
# This may be replaced when dependencies are built.
