file(REMOVE_RECURSE
  "CMakeFiles/storage_shootout.dir/storage_shootout.cpp.o"
  "CMakeFiles/storage_shootout.dir/storage_shootout.cpp.o.d"
  "storage_shootout"
  "storage_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
